/**
 * @file
 * End-to-end correctness of the two-stream and multi-pass pipelines:
 * Windowed Filter (benchmark 8) and Power Grid (benchmark 9), checked
 * against independent reference computations over a replay of the
 * exact same input.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "ingest/generator.h"
#include "ingest/source.h"
#include "pipeline/egress.h"
#include "pipeline/extract.h"
#include "pipeline/pipeline.h"
#include "pipeline/power_grid.h"
#include "pipeline/windowed_filter.h"
#include "pipeline/windowing.h"

namespace sbhbm::pipeline {
namespace {

using ingest::KvGen;
using ingest::PowerGridGen;
using ingest::Source;
using ingest::SourceConfig;

constexpr SimTime kWindow = 50 * kNsPerMs;

runtime::EngineConfig
engineConfig()
{
    runtime::EngineConfig cfg;
    cfg.cores = 8;
    return cfg;
}

/** Capture every output row. */
class RowCapture : public Operator
{
  public:
    explicit RowCapture(Pipeline &p) : Operator(p, "rows") {}

    std::vector<std::vector<uint64_t>> rows;

  protected:
    void
    process(Msg msg, int) override
    {
        ASSERT_TRUE(msg.isBundle());
        for (uint32_t r = 0; r < msg.bundle->size(); ++r) {
            const uint64_t *row = msg.bundle->row(r);
            rows.emplace_back(row, row + msg.bundle->cols());
        }
        pipe_.noteWindowExternalized(msg.window);
    }
};

/** Replay a generator through a capture-only pipeline. */
template <typename Gen>
std::vector<std::vector<uint64_t>>
replay(Gen gen, const SourceConfig &scfg)
{
    runtime::Engine eng(engineConfig());
    Pipeline pipe(eng, columnar::WindowSpec{kWindow});

    class Cap : public Operator
    {
      public:
        Cap(Pipeline &p, std::vector<std::vector<uint64_t>> &out)
            : Operator(p, "cap"), out_(out)
        {
        }

      protected:
        void
        process(Msg msg, int) override
        {
            for (uint32_t r = 0; r < msg.bundle->size(); ++r) {
                const uint64_t *row = msg.bundle->row(r);
                out_.emplace_back(row, row + msg.bundle->cols());
            }
        }

      private:
        std::vector<std::vector<uint64_t>> &out_;
    };

    std::vector<std::vector<uint64_t>> rows;
    auto &cap = pipe.add<Cap>(pipe, rows);
    Source src(eng, pipe, gen, &cap, scfg);
    src.start();
    eng.machine().run();
    return rows;
}

TEST(WindowedFilterPipeline, SurvivorsMatchReference)
{
    runtime::Engine eng(engineConfig());
    Pipeline pipe(eng, columnar::WindowSpec{kWindow});

    auto &filter = pipe.add<WindowedFilterOp>(pipe, "wf", KvGen::kTsCol,
                                              KvGen::kValueCol);
    auto &ex_b = pipe.add<ExtractOp>(pipe, "ex_b", KvGen::kKeyCol);
    auto &win_b = pipe.add<WindowOp>(pipe, "win_b", KvGen::kTsCol);
    auto &cap = pipe.add<RowCapture>(pipe);
    ex_b.connectTo(&win_b);
    win_b.connectTo(&filter, 1);
    filter.connectTo(&cap);

    SourceConfig scfg;
    scfg.bundle_records = 2'000;
    scfg.total_records = 60'000;
    KvGen gen_a(31, 40, 1000);
    KvGen gen_b(32, 40, 1000);
    Source src_a(eng, pipe, gen_a, &filter, scfg, 0);
    Source src_b(eng, pipe, gen_b, &ex_b, scfg, 0);
    src_a.start();
    src_b.start();
    eng.machine().run();

    // Reference: per window, average stream A's values; keep B's
    // records whose value exceeds it.
    auto rows_a = replay(KvGen(31, 40, 1000), scfg);
    auto rows_b = replay(KvGen(32, 40, 1000), scfg);
    columnar::WindowSpec spec{kWindow};
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> avg; // w -> (sum, n)
    for (const auto &r : rows_a) {
        auto &[sum, n] = avg[spec.windowOf(r[KvGen::kTsCol])];
        sum += r[KvGen::kValueCol];
        ++n;
    }
    uint64_t expect_survivors = 0;
    uint64_t expect_value_sum = 0;
    for (const auto &r : rows_b) {
        const auto &[sum, n] = avg[spec.windowOf(r[KvGen::kTsCol])];
        const uint64_t a = n ? sum / n : 0;
        if (r[KvGen::kValueCol] > a) {
            ++expect_survivors;
            expect_value_sum += r[KvGen::kValueCol];
        }
    }

    ASSERT_EQ(cap.rows.size(), expect_survivors);
    uint64_t got_value_sum = 0;
    for (const auto &r : cap.rows)
        got_value_sum += r[KvGen::kValueCol];
    EXPECT_EQ(got_value_sum, expect_value_sum);
}

TEST(PowerGridPipeline, WinnersMatchReference)
{
    runtime::Engine eng(engineConfig());
    Pipeline pipe(eng, columnar::WindowSpec{kWindow});

    auto &extract = pipe.add<ExtractOp>(pipe, "ex",
                                        PowerGridOp::kPlugCol);
    auto &window = pipe.add<WindowOp>(pipe, "win", PowerGridOp::kTsCol);
    auto &grid = pipe.add<PowerGridOp>(pipe, "grid");
    auto &cap = pipe.add<RowCapture>(pipe);
    extract.connectTo(&window);
    window.connectTo(&grid);
    grid.connectTo(&cap);

    SourceConfig scfg;
    scfg.bundle_records = 2'000;
    scfg.total_records = 50'000;
    PowerGridGen gen(77, 10, 8);
    Source src(eng, pipe, gen, &extract, scfg);
    src.start();
    eng.machine().run();

    // Reference: recompute winners per window.
    auto rows = replay(PowerGridGen(77, 10, 8), scfg);
    columnar::WindowSpec spec{kWindow};
    struct PlugAcc
    {
        uint64_t sum = 0, n = 0, house = 0;
    };
    std::map<uint64_t, std::map<uint64_t, PlugAcc>> per_window;
    for (const auto &r : rows) {
        auto &acc = per_window[spec.windowOf(r[PowerGridOp::kTsCol])]
                              [r[PowerGridOp::kPlugCol]];
        acc.sum += r[PowerGridOp::kLoadCol];
        ++acc.n;
        acc.house = r[PowerGridOp::kHouseCol];
    }
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> expect; // (w,house)->cnt
    for (const auto &[w, plugs] : per_window) {
        double gsum = 0;
        uint64_t gn = 0;
        for (const auto &[plug, a] : plugs) {
            gsum += static_cast<double>(a.sum);
            gn += a.n;
        }
        const double gavg = gn ? gsum / static_cast<double>(gn) : 0;
        std::map<uint64_t, uint64_t> high;
        for (const auto &[plug, a] : plugs) {
            if (static_cast<double>(a.sum) / static_cast<double>(a.n)
                > gavg) {
                ++high[a.house];
            }
        }
        uint64_t best = 0;
        for (const auto &[h, c] : high)
            best = std::max(best, c);
        for (const auto &[h, c] : high)
            if (c == best && best > 0)
                expect[{w, h}] = c;
    }

    std::map<std::pair<uint64_t, uint64_t>, uint64_t> got;
    // Output rows are (house, count); recover the window by matching
    // counts — instead, track via total rows and per-house counts.
    ASSERT_EQ(cap.rows.size(), expect.size());
    std::multiset<std::pair<uint64_t, uint64_t>> expect_rows, got_rows;
    for (const auto &[wh, c] : expect)
        expect_rows.insert({wh.second, c});
    for (const auto &r : cap.rows)
        got_rows.insert({r[0], r[1]});
    EXPECT_EQ(got_rows, expect_rows);
}

} // namespace
} // namespace sbhbm::pipeline
