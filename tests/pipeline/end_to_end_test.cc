/**
 * @file
 * End-to-end pipeline tests: run full pipelines on the simulated
 * machine and check the emitted results against independent reference
 * computations over the exact same generated input.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ingest/generator.h"
#include "ingest/source.h"
#include "pipeline/aggregations.h"
#include "pipeline/egress.h"
#include "pipeline/external_join.h"
#include "pipeline/pardo.h"
#include "pipeline/pipeline.h"
#include "pipeline/temporal_join.h"
#include "pipeline/unkeyed.h"
#include "pipeline/windowing.h"

namespace sbhbm::pipeline {
namespace {

using ingest::KvGen;
using ingest::Source;
using ingest::SourceConfig;

runtime::EngineConfig
testEngineConfig(unsigned cores = 8)
{
    runtime::EngineConfig cfg;
    cfg.cores = cores;
    return cfg;
}

/** Simple extractor operator: bundle -> KPA(key_col), no filtering. */
class ExtractOp : public Operator
{
  public:
    ExtractOp(Pipeline &pipe, columnar::ColumnId key_col)
        : Operator(pipe, "extract"), key_col_(key_col)
    {
    }

  protected:
    void
    process(Msg msg, int) override
    {
        const ImpactTag tag = classify(msg.min_ts);
        spawnTracked(tag, [this, tag, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &em) mutable {
            auto ctx = makeCtx(log, msg.bundle->cols());
            auto out = kpa::extract(
                ctx, *msg.bundle, key_col_,
                eng_.placeKpa(tag, uint64_t{msg.bundle->size()} * 16));
            em.push(Msg::ofKpa(std::move(out), msg.min_ts));
        });
    }

  private:
    columnar::ColumnId key_col_;
};

class EndToEndTest : public ::testing::Test
{
  protected:
    static constexpr uint64_t kKeyRange = 40;
    static constexpr uint64_t kValueRange = 1000;

    /** Build and run: source -> extract -> window -> agg -> egress. */
    void
    runKeyedPipeline(Aggregation agg, uint64_t total_records,
                     runtime::EngineConfig ecfg = testEngineConfig())
    {
        eng_ = std::make_unique<runtime::Engine>(ecfg);
        pipe_ = std::make_unique<Pipeline>(
            *eng_, columnar::WindowSpec{100 * kNsPerMs});

        auto &extract = pipe_->add<ExtractOp>(*pipe_, KvGen::kKeyCol);
        auto &window = pipe_->add<WindowOp>(*pipe_, "window",
                                            KvGen::kTsCol);
        auto &aggop = pipe_->add<KeyedAggOp>(*pipe_, "agg",
                                             KvGen::kKeyCol,
                                             std::move(agg));
        egress_ = &pipe_->add<EgressOp>(*pipe_);
        extract.connectTo(&window);
        window.connectTo(&aggop);
        aggop.connectTo(egress_);

        gen_ = std::make_unique<KvGen>(7, kKeyRange, kValueRange);
        SourceConfig scfg;
        scfg.bundle_records = 5000;
        scfg.total_records = total_records;
        src_ = std::make_unique<Source>(*eng_, *pipe_, *gen_, &extract,
                                        scfg);
        src_->start();
        eng_->machine().run();
    }

    /** Replay the same generator to get the ground-truth records. */
    std::vector<std::array<uint64_t, 3>>
    replayInput(uint64_t total_records)
    {
        // Mirror the source's pacing: bundle timestamps depend only on
        // NIC rate, so replay with the same seed and same spreads is
        // not needed — we read back what the engine ingested instead.
        // For verification we re-run a second identical engine setup
        // and capture rows at ingestion.
        std::vector<std::array<uint64_t, 3>> rows;
        runtime::Engine eng(testEngineConfig());
        Pipeline pipe(eng, columnar::WindowSpec{100 * kNsPerMs});

        class CaptureOp : public Operator
        {
          public:
            CaptureOp(Pipeline &p,
                      std::vector<std::array<uint64_t, 3>> &out)
                : Operator(p, "capture"), out_(out)
            {
            }

          protected:
            void
            process(Msg msg, int) override
            {
                for (uint32_t r = 0; r < msg.bundle->size(); ++r) {
                    const uint64_t *row = msg.bundle->row(r);
                    out_.push_back({row[0], row[1], row[2]});
                }
            }

          private:
            std::vector<std::array<uint64_t, 3>> &out_;
        };

        auto &cap = pipe.add<CaptureOp>(pipe, rows);
        KvGen gen(7, kKeyRange, kValueRange);
        SourceConfig scfg;
        scfg.bundle_records = 5000;
        scfg.total_records = total_records;
        Source src(eng, pipe, gen, &cap, scfg);
        src.start();
        eng.machine().run();
        return rows;
    }

    std::unique_ptr<runtime::Engine> eng_;
    std::unique_ptr<Pipeline> pipe_;
    std::unique_ptr<KvGen> gen_;
    std::unique_ptr<Source> src_;
    EgressOp *egress_ = nullptr;
};

TEST_F(EndToEndTest, WindowedSumPerKeyMatchesReference)
{
    const uint64_t n = 50000;
    runKeyedPipeline(aggs::sumPerKey(KvGen::kValueCol), n);

    // Ground truth from an identical replay.
    auto rows = replayInput(n);
    ASSERT_EQ(rows.size(), n);
    columnar::WindowSpec spec{100 * kNsPerMs};
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> expect;
    for (const auto &r : rows)
        expect[{spec.windowOf(r[2]), r[0]}] += r[1];

    // The engine's outputs, keyed the same way, via egress counters:
    // total output records == number of (window, key) groups.
    uint64_t expect_groups = expect.size();
    EXPECT_EQ(egress_->outputRecords(), expect_groups);
    EXPECT_GT(pipe_->windowsExternalized(), 0u);
}

TEST_F(EndToEndTest, AllWindowsExternalizeAndDelaysRecorded)
{
    runKeyedPipeline(aggs::countPerKey(), 50000);
    EXPECT_TRUE(src_->finished());
    EXPECT_EQ(src_->recordsIngested(), 50000u);
    // Every closed window reported a delay sample.
    EXPECT_EQ(eng_->outputDelays().size(),
              egress_->windowRecords().size());
    for (double d : eng_->outputDelays().samples())
        EXPECT_LT(d, 1.0) << "delay above 1s target in a tiny test";
}

TEST_F(EndToEndTest, MemoryFullyReclaimedAfterDrain)
{
    runKeyedPipeline(aggs::sumPerKey(KvGen::kValueCol), 30000);
    // All bundles and KPAs destroyed: gauges back to zero.
    EXPECT_EQ(eng_->memory().gauge(mem::Tier::kHbm).used(), 0u);
    EXPECT_EQ(eng_->memory().gauge(mem::Tier::kDram).used(), 0u);
    EXPECT_EQ(eng_->inflightBundles(), 0u);
}

TEST_F(EndToEndTest, DeterministicAcrossRuns)
{
    runKeyedPipeline(aggs::sumPerKey(KvGen::kValueCol), 20000);
    const uint64_t out1 = egress_->outputRecords();
    const SimTime t1 = eng_->machine().now();
    runKeyedPipeline(aggs::sumPerKey(KvGen::kValueCol), 20000);
    EXPECT_EQ(egress_->outputRecords(), out1);
    EXPECT_EQ(eng_->machine().now(), t1);
}

TEST_F(EndToEndTest, MoreCoresFinishFasterUnderFixedWork)
{
    // The fixed amount of grouping work drains sooner with more
    // cores: total virtual time (ingest + close + drain) shrinks.
    runKeyedPipeline(aggs::sumPerKey(KvGen::kValueCol), 200000,
                     testEngineConfig(2));
    const SimTime t2 = eng_->machine().now();
    runKeyedPipeline(aggs::sumPerKey(KvGen::kValueCol), 200000,
                     testEngineConfig(16));
    const SimTime t16 = eng_->machine().now();
    EXPECT_LT(t16, t2);
}

TEST_F(EndToEndTest, AvgAllPipelineEmitsOneRecordPerWindow)
{
    auto ecfg = testEngineConfig();
    eng_ = std::make_unique<runtime::Engine>(ecfg);
    pipe_ = std::make_unique<Pipeline>(
        *eng_, columnar::WindowSpec{100 * kNsPerMs});
    auto &avg = pipe_->add<AvgAllOp>(*pipe_, "avgall", KvGen::kTsCol,
                                     KvGen::kValueCol);
    egress_ = &pipe_->add<EgressOp>(*pipe_);
    avg.connectTo(egress_);

    gen_ = std::make_unique<KvGen>(11, kKeyRange, kValueRange);
    SourceConfig scfg;
    scfg.bundle_records = 5000;
    scfg.total_records = 40000;
    src_ = std::make_unique<Source>(*eng_, *pipe_, *gen_, &avg, scfg);
    src_->start();
    eng_->machine().run();

    EXPECT_EQ(egress_->outputRecords(), egress_->windowRecords().size());
    EXPECT_GT(egress_->outputRecords(), 0u);
}

TEST_F(EndToEndTest, TemporalJoinCountsMatchReference)
{
    auto ecfg = testEngineConfig();
    eng_ = std::make_unique<runtime::Engine>(ecfg);
    pipe_ = std::make_unique<Pipeline>(
        *eng_, columnar::WindowSpec{100 * kNsPerMs});

    auto &ex_l = pipe_->add<ExtractOp>(*pipe_, KvGen::kKeyCol);
    auto &ex_r = pipe_->add<ExtractOp>(*pipe_, KvGen::kKeyCol);
    auto &win_l = pipe_->add<WindowOp>(*pipe_, "win_l", KvGen::kTsCol);
    auto &win_r = pipe_->add<WindowOp>(*pipe_, "win_r", KvGen::kTsCol);
    auto &join = pipe_->add<TemporalJoinOp>(*pipe_, "join",
                                            KvGen::kKeyCol,
                                            KvGen::kValueCol);
    egress_ = &pipe_->add<EgressOp>(*pipe_);
    ex_l.connectTo(&win_l);
    ex_r.connectTo(&win_r);
    win_l.connectTo(&join, 0);
    win_r.connectTo(&join, 1);
    join.connectTo(egress_);

    KvGen gen_l(21, 30, 100);
    KvGen gen_r(22, 30, 100);
    SourceConfig scfg;
    scfg.bundle_records = 1000;
    scfg.total_records = 10000;
    Source src_l(*eng_, *pipe_, gen_l, &ex_l, scfg, 0);
    Source src_r(*eng_, *pipe_, gen_r, &ex_r, scfg, 0);
    src_l.start();
    src_r.start();
    eng_->machine().run();

    // Reference: replay both generators; both sources see identical
    // pacing, so timestamps match the engine run exactly.
    columnar::WindowSpec spec{100 * kNsPerMs};
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> l_cnt, r_cnt;
    {
        runtime::Engine eng2(testEngineConfig());
        Pipeline pipe2(eng2, spec);

        class CaptureOp : public Operator
        {
          public:
            CaptureOp(Pipeline &p,
                      std::map<std::pair<uint64_t, uint64_t>, uint64_t> &m)
                : Operator(p, "cap"), m_(m)
            {
            }

          protected:
            void
            process(Msg msg, int) override
            {
                columnar::WindowSpec spec{100 * kNsPerMs};
                for (uint32_t r = 0; r < msg.bundle->size(); ++r) {
                    const uint64_t *row = msg.bundle->row(r);
                    ++m_[{spec.windowOf(row[2]), row[0]}];
                }
            }

          private:
            std::map<std::pair<uint64_t, uint64_t>, uint64_t> &m_;
        };

        auto &cl = pipe2.add<CaptureOp>(pipe2, l_cnt);
        auto &cr = pipe2.add<CaptureOp>(pipe2, r_cnt);
        KvGen g_l(21, 30, 100), g_r(22, 30, 100);
        Source s_l(eng2, pipe2, g_l, &cl, scfg, 0);
        Source s_r(eng2, pipe2, g_r, &cr, scfg, 0);
        s_l.start();
        s_r.start();
        eng2.machine().run();
    }
    uint64_t expect_pairs = 0;
    for (const auto &[wk, cl] : l_cnt) {
        auto it = r_cnt.find(wk);
        if (it != r_cnt.end())
            expect_pairs += cl * it->second;
    }
    EXPECT_EQ(egress_->outputRecords(), expect_pairs);
    EXPECT_GT(expect_pairs, 0u);
}

} // namespace
} // namespace sbhbm::pipeline
