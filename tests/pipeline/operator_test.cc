/**
 * @file
 * Operator-machinery tests: watermark alignment, deferred emission,
 * impact-tag classification, Table 1 operator/primitive mapping.
 */

#include "pipeline/operator.h"

#include <gtest/gtest.h>

#include <vector>

#include "pipeline/aggregations.h"
#include "pipeline/egress.h"
#include "pipeline/pipeline.h"

namespace sbhbm::pipeline {
namespace {

runtime::EngineConfig
cfg4()
{
    runtime::EngineConfig cfg;
    cfg.cores = 4;
    return cfg;
}

/** Records everything it receives, with timestamps. */
class ProbeOp : public Operator
{
  public:
    explicit ProbeOp(Pipeline &pipe) : Operator(pipe, "probe") {}

    std::vector<SimTime> msg_times;
    std::vector<std::pair<EventTime, SimTime>> wm_times;

  protected:
    void
    process(Msg, int) override
    {
        msg_times.push_back(eng_.machine().now());
    }

    void
    onWatermark(Watermark wm) override
    {
        wm_times.push_back({wm.ts, eng_.machine().now()});
    }
};

/** Pass-through operator spawning one fixed-cost task per message. */
class DelayOp : public Operator
{
  public:
    DelayOp(Pipeline &pipe, double cpu_ns)
        : Operator(pipe, "delay"), cpu_ns_(cpu_ns)
    {
    }

  protected:
    void
    process(Msg msg, int) override
    {
        spawnTracked(ImpactTag::kHigh,
                     [this, msg = std::move(msg)](sim::CostLog &log,
                                                  Emitter &em) mutable {
                         log.cpu(cpu_ns_);
                         em.push(std::move(msg));
                     });
    }

  private:
    double cpu_ns_;
};

class OperatorTest : public ::testing::Test
{
  protected:
    OperatorTest()
        : eng_(cfg4()), pipe_(eng_, columnar::WindowSpec{kNsPerSec})
    {
    }

    Msg
    bundleMsg(EventTime ts)
    {
        auto *b = columnar::Bundle::create(eng_.memory(), 3, 4);
        b->append({1, 2, ts});
        return Msg::ofBundle(columnar::BundleHandle::adopt(b), ts);
    }

    runtime::Engine eng_;
    Pipeline pipe_;
};

TEST_F(OperatorTest, OutputsEmittedOnlyAtSimulatedCompletion)
{
    auto &delay = pipe_.add<DelayOp>(pipe_, 50000.0);
    auto &probe = pipe_.add<ProbeOp>(pipe_);
    delay.connectTo(&probe);

    delay.receive(bundleMsg(10));
    EXPECT_TRUE(probe.msg_times.empty()) << "no emission at dispatch";
    eng_.machine().run();
    ASSERT_EQ(probe.msg_times.size(), 1u);
    EXPECT_GE(probe.msg_times[0], 50000u);
}

TEST_F(OperatorTest, WatermarkWaitsForPrecedingTasks)
{
    auto &delay = pipe_.add<DelayOp>(pipe_, 100000.0);
    auto &probe = pipe_.add<ProbeOp>(pipe_);
    delay.connectTo(&probe);

    delay.receive(bundleMsg(10));
    delay.receiveWatermark(Watermark{kNsPerSec});
    eng_.machine().run();
    ASSERT_EQ(probe.wm_times.size(), 1u);
    ASSERT_EQ(probe.msg_times.size(), 1u);
    EXPECT_GE(probe.wm_times[0].second, probe.msg_times[0])
        << "wm must not overtake data";
}

TEST_F(OperatorTest, WatermarkPassesImmediatelyWhenIdle)
{
    auto &delay = pipe_.add<DelayOp>(pipe_, 1000.0);
    auto &probe = pipe_.add<ProbeOp>(pipe_);
    delay.connectTo(&probe);
    delay.receiveWatermark(Watermark{123});
    eng_.machine().run();
    ASSERT_EQ(probe.wm_times.size(), 1u);
    EXPECT_EQ(probe.wm_times[0].first, 123u);
}

TEST_F(OperatorTest, DuplicateWatermarksAreSuppressed)
{
    auto &delay = pipe_.add<DelayOp>(pipe_, 1000.0);
    auto &probe = pipe_.add<ProbeOp>(pipe_);
    delay.connectTo(&probe);
    delay.receiveWatermark(Watermark{100});
    delay.receiveWatermark(Watermark{100});
    delay.receiveWatermark(Watermark{50}); // regression is ignored
    eng_.machine().run();
    EXPECT_EQ(probe.wm_times.size(), 1u);
}

TEST_F(OperatorTest, TwoPortWatermarkIsTheMinimum)
{
    auto &probe = pipe_.add<ProbeOp>(pipe_);
    // A raw two-port operator around the probe.
    class TwoPort : public Operator
    {
      public:
        explicit TwoPort(Pipeline &p) : Operator(p, "twoport", 2) {}

      protected:
        void process(Msg, int) override {}
    };
    auto &tp = pipe_.add<TwoPort>(pipe_);
    tp.connectTo(&probe);

    tp.receiveWatermark(Watermark{200}, 0);
    eng_.machine().run();
    EXPECT_TRUE(probe.wm_times.empty()) << "port 1 has no wm yet";

    tp.receiveWatermark(Watermark{150}, 1);
    eng_.machine().run();
    ASSERT_EQ(probe.wm_times.size(), 1u);
    EXPECT_EQ(probe.wm_times[0].first, 150u) << "min of both ports";

    tp.receiveWatermark(Watermark{400}, 1);
    eng_.machine().run();
    ASSERT_EQ(probe.wm_times.size(), 2u);
    EXPECT_EQ(probe.wm_times[1].first, 200u);
}

TEST_F(OperatorTest, ClassifyFollowsTargetWindow)
{
    const auto &spec = pipe_.windows();
    // next window to close is 0.
    EXPECT_EQ(pipe_.classify(spec.start(0)), ImpactTag::kUrgent);
    EXPECT_EQ(pipe_.classify(spec.start(1)), ImpactTag::kHigh);
    EXPECT_EQ(pipe_.classify(spec.start(2)), ImpactTag::kHigh);
    EXPECT_EQ(pipe_.classify(spec.start(3)), ImpactTag::kLow);

    pipe_.noteWindowExternalized(4);
    EXPECT_EQ(pipe_.classify(spec.start(3)), ImpactTag::kUrgent);
    EXPECT_EQ(pipe_.classify(spec.start(5)), ImpactTag::kUrgent);
    EXPECT_EQ(pipe_.classify(spec.start(6)), ImpactTag::kHigh);
    EXPECT_EQ(pipe_.windowsExternalized(), 5u);
}

TEST_F(OperatorTest, ExternalizationCountIsIdempotent)
{
    pipe_.noteWindowExternalized(2);
    pipe_.noteWindowExternalized(2);
    pipe_.noteWindowExternalized(1);
    EXPECT_EQ(pipe_.windowsExternalized(), 3u);
    EXPECT_EQ(pipe_.targetWindow(), 3u);
}

TEST_F(OperatorTest, RowSinkBuildsBundles)
{
    RowSink sink(2);
    sink.push({1, 10});
    sink.push({2, 20});
    EXPECT_EQ(sink.rows(), 2u);
    auto b = sink.toBundle(eng_.memory());
    ASSERT_TRUE(b);
    EXPECT_EQ(b->size(), 2u);
    EXPECT_EQ(b->row(1)[1], 20u);

    RowSink empty(3);
    EXPECT_FALSE(empty.toBundle(eng_.memory()));
}

/**
 * Table 1 mapping check: aggregations are built from the documented
 * primitives (sort/merge on KPAs + keyed reduction) — here we verify
 * the aggregator library computes the documented functions.
 */
TEST_F(OperatorTest, AggregatorLibraryComputesDocumentedFunctions)
{
    // Build a fake key run over rows with value column 1.
    std::vector<std::array<uint64_t, 2>> rows = {
        {7, 30}, {7, 10}, {7, 20}, {7, 10}};
    std::vector<kpa::KpEntry> run;
    for (auto &r : rows)
        run.push_back({r[0], r.data()});

    auto check = [&](Aggregation a,
                     std::vector<std::array<uint64_t, 2>> expect) {
        RowSink sink(a.out_cols);
        a.per_key(7, run.data(), run.size(), sink);
        ASSERT_EQ(sink.rows(), expect.size());
        auto b = sink.toBundle(eng_.memory());
        for (size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(b->row(i)[0], expect[i][0]);
            EXPECT_EQ(b->row(i)[1], expect[i][1]);
        }
    };

    check(aggs::sumPerKey(1), {{7, 70}});
    check(aggs::countPerKey(), {{7, 4}});
    check(aggs::avgPerKey(1), {{7, 17}});
    check(aggs::medianPerKey(1), {{7, 20}});
    check(aggs::topKPerKey(1, 2), {{7, 30}, {7, 20}});
    check(aggs::uniqueCountPerKey(1), {{7, 3}});
    check(aggs::percentilePerKey(1, 100.0), {{7, 30}});
}

} // namespace
} // namespace sbhbm::pipeline
