/**
 * @file
 * Tests of the ParDo family: Filter, KpaFilter, Sample, FlatMap.
 */

#include <gtest/gtest.h>

#include <set>

#include "ingest/generator.h"
#include "ingest/source.h"
#include "pipeline/egress.h"
#include "pipeline/extract.h"
#include "pipeline/pardo.h"
#include "pipeline/pipeline.h"

namespace sbhbm::pipeline {
namespace {

using ingest::KvGen;
using ingest::Source;
using ingest::SourceConfig;

runtime::EngineConfig
engineConfig()
{
    runtime::EngineConfig cfg;
    cfg.cores = 4;
    return cfg;
}

/** Sink counting KPA entries / bundle rows it receives. */
class CountSink : public Operator
{
  public:
    explicit CountSink(Pipeline &p) : Operator(p, "count") {}

    uint64_t kpa_entries = 0;
    uint64_t bundle_rows = 0;
    std::set<uint64_t> keys;

  protected:
    void
    process(Msg msg, int) override
    {
        if (msg.isKpa()) {
            kpa_entries += msg.kpa->size();
            for (uint32_t i = 0; i < msg.kpa->size(); ++i)
                keys.insert(msg.kpa->at(i).key);
        } else {
            bundle_rows += msg.bundle->size();
        }
    }
};

class PardoTest : public ::testing::Test
{
  protected:
    static constexpr uint64_t kRecords = 40'000;
    static constexpr uint64_t kKeys = 100;

    template <typename Op, typename... Args>
    CountSink &
    run(Args &&...args)
    {
        eng_ = std::make_unique<runtime::Engine>(engineConfig());
        pipe_ = std::make_unique<Pipeline>(
            *eng_, columnar::WindowSpec{100 * kNsPerMs});
        auto &extract = pipe_->add<ExtractOp>(*pipe_, "ex",
                                              KvGen::kKeyCol);
        auto &op = pipe_->add<Op>(*pipe_, std::forward<Args>(args)...);
        auto &sink = pipe_->add<CountSink>(*pipe_);
        extract.connectTo(&op);
        op.connectTo(&sink);

        KvGen gen(7, kKeys, 1000);
        SourceConfig scfg;
        scfg.bundle_records = 4'000;
        scfg.total_records = kRecords;
        Source src(*eng_, *pipe_, gen, &extract, scfg);
        src.start();
        eng_->machine().run();
        return sink;
    }

    std::unique_ptr<runtime::Engine> eng_;
    std::unique_ptr<Pipeline> pipe_;
};

TEST_F(PardoTest, KpaFilterKeepsExactlyMatchingKeys)
{
    auto &sink = run<KpaFilterOp>("filter", [](uint64_t k) {
        return k % 2 == 0;
    });
    for (uint64_t k : sink.keys)
        EXPECT_EQ(k % 2, 0u);
    // Uniform keys: about half survive.
    EXPECT_NEAR(static_cast<double>(sink.kpa_entries), kRecords / 2.0,
                kRecords * 0.05);
}

TEST_F(PardoTest, SampleKeepsRequestedFraction)
{
    auto &sink = run<SampleOp>("sample", 0.25);
    // Sampling selects whole keys (hash of key), so the kept fraction
    // fluctuates with the key population: expect 25% +- 15% of keys.
    EXPECT_NEAR(static_cast<double>(sink.keys.size()), kKeys * 0.25,
                kKeys * 0.15);
    EXPECT_GT(sink.kpa_entries, 0u);
    EXPECT_LT(sink.kpa_entries, kRecords / 2);
}

TEST_F(PardoTest, SampleIsDeterministic)
{
    auto keys1 = run<SampleOp>("sample", 0.3).keys;
    auto keys2 = run<SampleOp>("sample", 0.3).keys;
    EXPECT_EQ(keys1, keys2);
}

TEST_F(PardoTest, SampleRateZeroAndOneAreExact)
{
    EXPECT_EQ(run<SampleOp>("none", 0.0).kpa_entries, 0u);
    EXPECT_EQ(run<SampleOp>("all", 1.0).kpa_entries, kRecords);
}

TEST(FlatMapTest, FanOutProducesNewRecords)
{
    runtime::Engine eng(engineConfig());
    Pipeline pipe(eng, columnar::WindowSpec{100 * kNsPerMs});

    // Duplicate every record with value halved; drop odd keys.
    auto &fm = pipe.add<FlatMapOp>(
        pipe, "flatmap", 2,
        [](const uint64_t *row, const FlatMapOp::Emit &emit) {
            if (row[KvGen::kKeyCol] % 2 != 0)
                return;
            const uint64_t out1[2] = {row[0], row[1]};
            const uint64_t out2[2] = {row[0], row[1] / 2};
            emit(out1);
            emit(out2);
        });

    class RowSinkOp : public Operator
    {
      public:
        explicit RowSinkOp(Pipeline &p) : Operator(p, "rows") {}
        uint64_t rows = 0;

      protected:
        void
        process(Msg msg, int) override
        {
            ASSERT_TRUE(msg.isBundle());
            ASSERT_EQ(msg.bundle->cols(), 2u);
            rows += msg.bundle->size();
        }
    };
    auto &sink = pipe.add<RowSinkOp>(pipe);
    fm.connectTo(&sink);

    KvGen gen(9, 100, 1000);
    SourceConfig scfg;
    scfg.bundle_records = 4'000;
    scfg.total_records = 40'000;
    Source src(eng, pipe, gen, &fm, scfg);
    src.start();
    eng.machine().run();

    // Half the keys survive, each duplicated: ~ the original count.
    EXPECT_NEAR(static_cast<double>(sink.rows), 40'000.0,
                40'000 * 0.05);
    EXPECT_EQ(eng.inflightBundles(), 0u);
}

} // namespace
} // namespace sbhbm::pipeline
