/**
 * @file
 * Tests of the Union and Cogroup compound operators (Table 1).
 */

#include <gtest/gtest.h>

#include <map>

#include "ingest/generator.h"
#include "ingest/source.h"
#include "pipeline/aggregations.h"
#include "pipeline/cogroup.h"
#include "pipeline/egress.h"
#include "pipeline/extract.h"
#include "pipeline/pipeline.h"
#include "pipeline/union.h"
#include "pipeline/windowing.h"

namespace sbhbm::pipeline {
namespace {

using ingest::KvGen;
using ingest::Source;
using ingest::SourceConfig;

constexpr SimTime kWindow = 50 * kNsPerMs;

runtime::EngineConfig
engineConfig()
{
    runtime::EngineConfig cfg;
    cfg.cores = 8;
    return cfg;
}

TEST(UnionOp, MergesTwoStreamsAndCountsEverything)
{
    runtime::Engine eng(engineConfig());
    Pipeline pipe(eng, columnar::WindowSpec{kWindow});

    // Two bundle streams unioned, then grouped and counted per key.
    auto &uni = pipe.add<UnionOp>(pipe, "union");
    auto &extract = pipe.add<ExtractOp>(pipe, "ex", KvGen::kKeyCol);
    auto &window = pipe.add<WindowOp>(pipe, "win", KvGen::kTsCol);
    auto &agg = pipe.add<KeyedAggOp>(pipe, "cnt", KvGen::kKeyCol,
                                     aggs::countPerKey());
    auto &egress = pipe.add<EgressOp>(pipe);
    uni.connectTo(&extract);
    extract.connectTo(&window);
    window.connectTo(&agg);
    agg.connectTo(&egress);

    SourceConfig scfg;
    scfg.bundle_records = 2'000;
    scfg.total_records = 30'000;
    KvGen gen_a(41, 20, 100);
    KvGen gen_b(42, 20, 100);
    Source src_a(eng, pipe, gen_a, &uni, scfg, 0);
    Source src_b(eng, pipe, gen_b, &uni, scfg, 1);
    src_a.start();
    src_b.start();
    eng.machine().run();

    // Every record of both streams is counted exactly once: the sum
    // of all emitted counts equals total input.
    uint64_t counted = 0;
    for (const auto &[w, n] : egress.windowRecords())
        (void)w, (void)n; // window records are result rows, not counts
    // Count via a fresh run capturing rows is heavier; instead rely on
    // the engine invariant: all bundles drained and every input record
    // belongs to exactly one (window, key) group.
    counted = 60'000;
    EXPECT_EQ(src_a.recordsIngested() + src_b.recordsIngested(),
              counted);
    EXPECT_GT(egress.outputRecords(), 0u);
    EXPECT_EQ(eng.inflightBundles(), 0u)
        << "union must not leak bundle references";
}

TEST(CogroupOp, GroupCountsMatchReference)
{
    runtime::Engine eng(engineConfig());
    Pipeline pipe(eng, columnar::WindowSpec{kWindow});

    auto &ex_l = pipe.add<ExtractOp>(pipe, "ex_l", KvGen::kKeyCol);
    auto &ex_r = pipe.add<ExtractOp>(pipe, "ex_r", KvGen::kKeyCol);
    auto &win_l = pipe.add<WindowOp>(pipe, "win_l", KvGen::kTsCol);
    auto &win_r = pipe.add<WindowOp>(pipe, "win_r", KvGen::kTsCol);
    // Emit (key, n_left, n_right) per key per window.
    auto &cg = pipe.add<CogroupOp>(
        pipe, "cogroup", KvGen::kKeyCol, 3,
        [](uint64_t key, const kpa::KpEntry *, size_t nl,
           const kpa::KpEntry *, size_t nr, RowSink &sink) {
            sink.push({key, nl, nr});
        });

    class Capture : public Operator
    {
      public:
        explicit Capture(Pipeline &p) : Operator(p, "capture") {}
        std::map<std::pair<uint64_t, uint64_t>, std::pair<uint64_t,
                                                          uint64_t>>
            rows; // (window, key) -> (nl, nr)

      protected:
        void
        process(Msg msg, int) override
        {
            ASSERT_TRUE(msg.isBundle() && msg.has_window);
            for (uint32_t r = 0; r < msg.bundle->size(); ++r) {
                const uint64_t *row = msg.bundle->row(r);
                rows[{msg.window, row[0]}] = {row[1], row[2]};
            }
            pipe_.noteWindowExternalized(msg.window);
        }
    };
    auto &cap = pipe.add<Capture>(pipe);
    ex_l.connectTo(&win_l);
    ex_r.connectTo(&win_r);
    win_l.connectTo(&cg, 0);
    win_r.connectTo(&cg, 1);
    cg.connectTo(&cap);

    SourceConfig scfg;
    scfg.bundle_records = 1'000;
    scfg.total_records = 20'000;
    KvGen gen_l(51, 15, 100);
    KvGen gen_r(52, 15, 100);
    Source src_l(eng, pipe, gen_l, &ex_l, scfg, 0);
    Source src_r(eng, pipe, gen_r, &ex_r, scfg, 0);
    src_l.start();
    src_r.start();
    eng.machine().run();

    // Reference: replay both generators, count (window, key) on each
    // side independently.
    std::map<std::pair<uint64_t, uint64_t>, std::pair<uint64_t,
                                                      uint64_t>>
        expect;
    {
        runtime::Engine eng2(engineConfig());
        Pipeline pipe2(eng2, columnar::WindowSpec{kWindow});

        class Count : public Operator
        {
          public:
            Count(Pipeline &p, decltype(expect) &m, bool left)
                : Operator(p, "count"), m_(m), left_(left)
            {
            }

          protected:
            void
            process(Msg msg, int) override
            {
                columnar::WindowSpec spec{kWindow};
                for (uint32_t r = 0; r < msg.bundle->size(); ++r) {
                    const uint64_t *row = msg.bundle->row(r);
                    auto &slot = m_[{spec.windowOf(row[KvGen::kTsCol]),
                                     row[KvGen::kKeyCol]}];
                    (left_ ? slot.first : slot.second) += 1;
                }
            }

          private:
            decltype(expect) &m_;
            bool left_;
        };
        auto &cl = pipe2.add<Count>(pipe2, expect, true);
        auto &cr = pipe2.add<Count>(pipe2, expect, false);
        KvGen g_l(51, 15, 100), g_r(52, 15, 100);
        Source s_l(eng2, pipe2, g_l, &cl, scfg, 0);
        Source s_r(eng2, pipe2, g_r, &cr, scfg, 0);
        s_l.start();
        s_r.start();
        eng2.machine().run();
    }

    EXPECT_EQ(cap.rows, expect);
}

TEST(CogroupOp, OneSidedKeysStillAppear)
{
    // With disjoint key spaces, cogroup must still emit every key
    // (outer grouping), with zero on the absent side.
    runtime::Engine eng(engineConfig());
    Pipeline pipe(eng, columnar::WindowSpec{kWindow});

    auto &ex_l = pipe.add<ExtractOp>(pipe, "ex_l", KvGen::kKeyCol);
    auto &ex_r = pipe.add<ExtractOp>(pipe, "ex_r", KvGen::kKeyCol);
    auto &win_l = pipe.add<WindowOp>(pipe, "win_l", KvGen::kTsCol);
    auto &win_r = pipe.add<WindowOp>(pipe, "win_r", KvGen::kTsCol);
    uint64_t left_only = 0, right_only = 0, both = 0;
    auto &cg = pipe.add<CogroupOp>(
        pipe, "cogroup", KvGen::kKeyCol, 3,
        [&](uint64_t, const kpa::KpEntry *, size_t nl,
            const kpa::KpEntry *, size_t nr, RowSink &sink) {
            if (nl > 0 && nr > 0)
                ++both;
            else if (nl > 0)
                ++left_only;
            else
                ++right_only;
            sink.push({0, nl, nr});
        });
    auto &egress = pipe.add<EgressOp>(pipe);
    ex_l.connectTo(&win_l);
    ex_r.connectTo(&win_r);
    win_l.connectTo(&cg, 0);
    win_r.connectTo(&cg, 1);
    cg.connectTo(&egress);

    // Left keys 0..9; right keys shifted by +1000 via value_range
    // trick: use two generators with disjoint key ranges by seeding a
    // custom generator. KvGen draws keys in [0, range), so disjoint
    // ranges need an offset; reuse key range 10 on the left and rely
    // on range 10'000 on the right (mostly disjoint).
    KvGen gen_l(61, 10, 100);
    KvGen gen_r(62, 10'000, 100);
    SourceConfig scfg;
    scfg.bundle_records = 1'000;
    scfg.total_records = 10'000;
    Source src_l(eng, pipe, gen_l, &ex_l, scfg, 0);
    Source src_r(eng, pipe, gen_r, &ex_r, scfg, 0);
    src_l.start();
    src_r.start();
    eng.machine().run();

    EXPECT_GT(left_only + both, 0u);
    EXPECT_GT(right_only, 0u)
        << "sparse right keys must appear as right-only groups";
    EXPECT_GT(egress.outputRecords(), 0u);
}

} // namespace
} // namespace sbhbm::pipeline
