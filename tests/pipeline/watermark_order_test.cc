/**
 * @file
 * Watermark-ordering regression tests.
 *
 * The engine executes tasks out of order (costs and priorities
 * differ), so watermark barriers must track *which* tasks are
 * outstanding, not how many completed. These tests pin the invariant
 * that broke once in development: a cheap task spawned after a
 * watermark must not unblock it while an expensive pre-watermark task
 * is still in flight.
 */

#include <gtest/gtest.h>

#include <vector>

#include "pipeline/egress.h"
#include "pipeline/operator.h"
#include "pipeline/pipeline.h"

namespace sbhbm::pipeline {
namespace {

runtime::EngineConfig
config(unsigned cores)
{
    runtime::EngineConfig cfg;
    cfg.cores = cores;
    return cfg;
}

/** Spawns one task per received message with a caller-chosen cost. */
class CostedOp : public Operator
{
  public:
    CostedOp(Pipeline &p, std::string name)
        : Operator(p, std::move(name))
    {
    }

    /** Emit a marker message downstream after cost_ns of work. */
    void
    inject(uint64_t marker, double cost_ns)
    {
        spawnTracked(ImpactTag::kHigh,
                     [marker, cost_ns](sim::CostLog &log, Emitter &em) {
                         log.cpu(cost_ns);
                         Msg m;
                         m.min_ts = marker;
                         em.push(std::move(m));
                     });
    }

  protected:
    void process(Msg, int) override {}
};

/** Records the arrival order of data markers and watermarks. */
class OrderSink : public Operator
{
  public:
    explicit OrderSink(Pipeline &p) : Operator(p, "order_sink") {}

    std::vector<int64_t> order; //!< markers >= 0; watermarks as -ts

  protected:
    void
    process(Msg msg, int) override
    {
        order.push_back(static_cast<int64_t>(msg.min_ts));
    }

    void
    onWatermark(columnar::Watermark wm) override
    {
        order.push_back(-static_cast<int64_t>(wm.ts));
    }
};

TEST(WatermarkOrder, SlowPreWatermarkTaskBlocksForwarding)
{
    runtime::Engine eng(config(8));
    Pipeline pipe(eng, columnar::WindowSpec{100 * kNsPerMs});
    auto &op = pipe.add<CostedOp>(pipe, "op");
    auto &sink = pipe.add<OrderSink>(pipe);
    op.connectTo(&sink);

    // Expensive pre-watermark task, then the watermark, then a cheap
    // post-watermark task that will *complete* first.
    op.inject(1, 5e6); // 5 ms
    op.receiveWatermark(columnar::Watermark{1000});
    op.inject(2, 1e3); // 1 us
    eng.machine().run();

    // The watermark must come after marker 1 (its task), in arrival
    // order; marker 2 completing early must not release it.
    ASSERT_EQ(sink.order.size(), 3u);
    EXPECT_EQ(sink.order[0], 2);     // cheap task output
    EXPECT_EQ(sink.order[1], 1);     // expensive pre-wm output
    EXPECT_EQ(sink.order[2], -1000); // watermark strictly after
}

TEST(WatermarkOrder, ManyOutOfOrderTasksStillAlignWatermarks)
{
    runtime::Engine eng(config(4));
    Pipeline pipe(eng, columnar::WindowSpec{100 * kNsPerMs});
    auto &op = pipe.add<CostedOp>(pipe, "op");
    auto &sink = pipe.add<OrderSink>(pipe);
    op.connectTo(&sink);

    // Alternate expensive/cheap tasks with interleaved watermarks.
    Rng rng(5);
    EventTime wm = 0;
    for (int i = 0; i < 50; ++i) {
        op.inject(100 + i, rng.nextBounded(2) ? 4e6 : 1e3);
        if (i % 10 == 9) {
            wm += 1000;
            op.receiveWatermark(columnar::Watermark{wm});
        }
    }
    eng.machine().run();

    // Every marker injected before a watermark must precede it in the
    // sink's order.
    for (int i = 0; i < 50; ++i) {
        const int64_t marker = 100 + i;
        const int64_t first_wm_after = -1000 * (i / 10 + 1);
        size_t marker_pos = 0, wm_pos = 0;
        for (size_t p = 0; p < sink.order.size(); ++p) {
            if (sink.order[p] == marker)
                marker_pos = p;
            if (sink.order[p] == first_wm_after)
                wm_pos = p;
        }
        if (i / 10 + 1 <= 5) { // watermark exists
            EXPECT_LT(marker_pos, wm_pos)
                << "marker " << marker << " overtaken by wm";
        }
    }
}

TEST(WatermarkOrder, TwoPortAlignmentTakesTheMinimum)
{
    runtime::Engine eng(config(4));
    Pipeline pipe(eng, columnar::WindowSpec{100 * kNsPerMs});

    class TwoPort : public Operator
    {
      public:
        explicit TwoPort(Pipeline &p) : Operator(p, "two", 2) {}

      protected:
        void process(Msg, int) override {}
    };
    auto &op = pipe.add<TwoPort>(pipe);
    auto &sink = pipe.add<OrderSink>(pipe);
    op.connectTo(&sink);

    op.receiveWatermark(columnar::Watermark{500}, 0);
    eng.machine().run();
    EXPECT_TRUE(sink.order.empty()) << "one-sided wm must not forward";

    op.receiveWatermark(columnar::Watermark{300}, 1);
    eng.machine().run();
    ASSERT_EQ(sink.order.size(), 1u);
    EXPECT_EQ(sink.order[0], -300) << "aligned wm is the min of ports";

    op.receiveWatermark(columnar::Watermark{800}, 1);
    eng.machine().run();
    ASSERT_EQ(sink.order.size(), 2u);
    EXPECT_EQ(sink.order[1], -500);
}

} // namespace
} // namespace sbhbm::pipeline
