/**
 * @file
 * Integration tests of the query harness: every evaluation query runs
 * end-to-end on every engine variant, produces output, meets basic
 * invariants (drained memory, bounded delay, sane rates) and is
 * deterministic.
 */

#include <gtest/gtest.h>

#include "queries/query.h"

namespace sbhbm::queries {
namespace {

QueryConfig
smallConfig(QueryId id)
{
    QueryConfig cfg;
    cfg.id = id;
    cfg.cores = 8;
    cfg.total_records = 400'000;
    cfg.bundle_records = 10'000;
    cfg.window_ns = 25 * kNsPerMs;
    cfg.key_range = 500;
    if (id == QueryId::kTemporalJoin)
        cfg.key_range = 100'000; // keep the join output linear
    return cfg;
}

// ---------------------------------------------------------------
// Every query on the full engine.
// ---------------------------------------------------------------

class EveryQuery : public ::testing::TestWithParam<QueryId>
{
};

TEST_P(EveryQuery, RunsAndProducesOutput)
{
    const QueryResult r = runQuery(smallConfig(GetParam()));
    EXPECT_EQ(r.records_ingested,
              GetParam() == QueryId::kTemporalJoin
                      || GetParam() == QueryId::kWindowedFilter
                  ? 800'000u
                  : 400'000u);
    EXPECT_GT(r.output_records, 0u);
    EXPECT_GT(r.windows_externalized, 0u);
    EXPECT_GT(r.throughput_mrps, 0.0);
    EXPECT_GT(r.sim_seconds, 0.0);
}

TEST_P(EveryQuery, Deterministic)
{
    const QueryResult a = runQuery(smallConfig(GetParam()));
    const QueryResult b = runQuery(smallConfig(GetParam()));
    EXPECT_EQ(a.output_records, b.output_records);
    EXPECT_EQ(a.windows_externalized, b.windows_externalized);
    EXPECT_DOUBLE_EQ(a.throughput_mrps, b.throughput_mrps);
    EXPECT_DOUBLE_EQ(a.peak_hbm_bw_gbps, b.peak_hbm_bw_gbps);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, EveryQuery,
                         ::testing::ValuesIn(allQueries()),
                         [](const auto &param_info) {
                             std::string n = queryName(param_info.param);
                             for (char &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

// ---------------------------------------------------------------
// Every engine variant on a fixed query.
// ---------------------------------------------------------------

class EveryEngine : public ::testing::TestWithParam<EngineKind>
{
};

TEST_P(EveryEngine, RunsTopKAndProducesOutput)
{
    QueryConfig cfg = smallConfig(QueryId::kTopKPerKey);
    cfg.engine = GetParam();
    const QueryResult r = runQuery(cfg);
    EXPECT_GT(r.output_records, 0u);
    EXPECT_GT(r.throughput_mrps, 0.0);
}

TEST_P(EveryEngine, RunsYsb)
{
    QueryConfig cfg = smallConfig(QueryId::kYsb);
    cfg.engine = GetParam();
    const QueryResult r = runQuery(cfg);
    EXPECT_GT(r.output_records, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EveryEngine,
    ::testing::Values(EngineKind::kStreamBoxHbm, EngineKind::kCaching,
                      EngineKind::kDramOnly, EngineKind::kCachingNoKpa,
                      EngineKind::kFlinkLike),
    [](const auto &param_info) {
        std::string n = engineKindName(param_info.param);
        for (char &c : n)
            if (c == ' ' || c == '-')
                c = '_';
        return n;
    });

// ---------------------------------------------------------------
// Cross-variant invariants (the Fig 9 ordering at small scale).
// ---------------------------------------------------------------

TEST(QueryHarness, NoKpaVariantIsSlowerThanFullEngine)
{
    QueryConfig cfg = smallConfig(QueryId::kTopKPerKey);
    cfg.cores = 16;
    cfg.total_records = 1'000'000;
    const double full = runQuery(cfg).throughput_mrps;
    cfg.engine = EngineKind::kCachingNoKpa;
    const double nokpa = runQuery(cfg).throughput_mrps;
    EXPECT_GT(full, nokpa);
}

TEST(QueryHarness, FlinkLikeIsSlowerThanFullEngine)
{
    QueryConfig cfg = smallConfig(QueryId::kYsb);
    cfg.cores = 16;
    const double full = runQuery(cfg).throughput_mrps;
    cfg.engine = EngineKind::kFlinkLike;
    const double flink = runQuery(cfg).throughput_mrps;
    EXPECT_GT(full, 2.0 * flink);
}

TEST(QueryHarness, EthernetIngestIsSlowerThanRdma)
{
    QueryConfig cfg = smallConfig(QueryId::kAvgAll);
    cfg.cores = 32;
    cfg.total_records = 2'000'000;
    const double rdma = runQuery(cfg).throughput_mrps;
    cfg.ethernet_ingest = true;
    const double eth = runQuery(cfg).throughput_mrps;
    EXPECT_GT(rdma, 1.5 * eth);
}

TEST(QueryHarness, MoreCoresMoreThroughputWhenComputeBound)
{
    QueryConfig cfg = smallConfig(QueryId::kMedianPerKey);
    cfg.total_records = 1'500'000;
    cfg.cores = 2;
    const double c2 = runQuery(cfg).throughput_mrps;
    cfg.cores = 16;
    const double c16 = runQuery(cfg).throughput_mrps;
    EXPECT_GT(c16, 1.5 * c2);
}

TEST(QueryHarness, OfferedRateCapsThroughput)
{
    QueryConfig cfg = smallConfig(QueryId::kSumPerKey);
    cfg.cores = 32;
    cfg.total_records = 1'000'000;
    cfg.offered_rate = 5e6;
    const QueryResult r = runQuery(cfg);
    EXPECT_LE(r.throughput_mrps, 5.5);
    EXPECT_GE(r.throughput_mrps, 3.0);
}

TEST(QueryHarness, DelaysStayUnderTargetWhenNicBound)
{
    QueryConfig cfg = smallConfig(QueryId::kAvgAll);
    cfg.cores = 32;
    const QueryResult r = runQuery(cfg);
    EXPECT_TRUE(r.met_target_delay)
        << "max delay " << r.max_delay_s << " s";
}

TEST(QueryHarness, SamplesCoverTheRun)
{
    QueryConfig cfg = smallConfig(QueryId::kTopKPerKey);
    const QueryResult r = runQuery(cfg);
    ASSERT_GE(r.samples.size(), 3u);
    // Samples are ordered in time and cover most of the run.
    for (size_t i = 1; i < r.samples.size(); ++i)
        EXPECT_GT(r.samples[i].t, r.samples[i - 1].t);
}

} // namespace
} // namespace sbhbm::queries
