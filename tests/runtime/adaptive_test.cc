/**
 * @file
 * Adaptive query execution tests: profiler estimators on adversarial
 * inputs, variant-policy hysteresis (no flap under oscillation),
 * decision-log determinism over a 2000-step run, groupSortKpa
 * equivalence with sortKpa, probe tuning fallbacks, and end-to-end
 * result identity with adaptation on vs off.
 */

#include "runtime/adaptive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/profiler.h"
#include "common/rng.h"
#include "common/units.h"
#include "ingest/generator.h"
#include "ingest/source.h"
#include "kpa/primitives.h"
#include "obs/trace.h"
#include "pipeline/aggregations.h"
#include "pipeline/egress.h"
#include "pipeline/pipeline.h"
#include "pipeline/windowing.h"
#include "runtime/engine.h"
#include "sim/machine_config.h"

namespace sbhbm::runtime {
namespace {

/** Minimal keyed entry for the estimator templates. */
struct KeyOnly
{
    uint64_t key;
};

// ------------------------------------------------------------------
// Profiler estimators
// ------------------------------------------------------------------

TEST(AdaptiveProfilerTest, SortedInputReportsFullySorted)
{
    std::vector<KeyOnly> e;
    for (uint64_t i = 0; i < 1000; ++i)
        e.push_back(KeyOnly{i * 3});
    EXPECT_DOUBLE_EQ(
        sampleSortedness(e.data(), static_cast<uint32_t>(e.size())),
        1.0);
}

TEST(AdaptiveProfilerTest, OneInversionDetectedWhenAllPairsSampled)
{
    // n - 1 <= kProfileSamples: the stride is 1 and every adjacent
    // pair is inspected, so a single inversion anywhere must be seen.
    for (uint32_t pos = 1; pos < 100; pos += 7) {
        std::vector<KeyOnly> e;
        for (uint64_t i = 0; i < 100; ++i)
            e.push_back(KeyOnly{i});
        std::swap(e[pos - 1], e[pos]);
        EXPECT_LT(sampleSortedness(e.data(), 100), 1.0)
            << "inversion at " << pos << " missed";
    }
}

TEST(AdaptiveProfilerTest, AllEqualKeysAreSortedAndOneGroup)
{
    std::vector<KeyOnly> e(5000, KeyOnly{42});
    const WindowStats st =
        sampleRunStats(e.data(), static_cast<uint32_t>(e.size()));
    EXPECT_DOUBLE_EQ(st.sortedness, 1.0);
    EXPECT_DOUBLE_EQ(st.dup_factor,
                     static_cast<double>(kProfileSamples));
    EXPECT_DOUBLE_EQ(st.est_groups, 1.0);
}

TEST(AdaptiveProfilerTest, AlternatingRunsLookUnsortedAndHeavyDup)
{
    // 0,1,0,1,...: two groups, half the adjacent pairs inverted. An
    // odd length keeps the sample strides odd, so the fixed-position
    // sampling cannot alias onto a single parity class.
    std::vector<KeyOnly> e;
    for (uint64_t i = 0; i < 4095; ++i)
        e.push_back(KeyOnly{i % 2});
    const WindowStats st =
        sampleRunStats(e.data(), static_cast<uint32_t>(e.size()));
    EXPECT_LT(st.sortedness, 0.75);
    EXPECT_GT(st.sortedness, 0.25);
    EXPECT_DOUBLE_EQ(st.est_groups, 2.0);
    EXPECT_DOUBLE_EQ(st.dup_factor,
                     static_cast<double>(kProfileSamples) / 2.0);
}

TEST(AdaptiveProfilerTest, MostlyUniqueSampleScalesGroupEstimate)
{
    // All-distinct keys: the sample never saturates, so the estimate
    // scales the sampled distinct count by n / samples — within 2x of
    // the true cardinality is all the policy needs.
    std::vector<KeyOnly> e;
    Rng rng(9);
    for (uint64_t i = 0; i < 10000; ++i)
        e.push_back(KeyOnly{i * 1000003});
    for (size_t i = e.size(); i > 1; --i)
        std::swap(e[i - 1], e[rng.nextBounded(i)]);
    const WindowStats st =
        sampleRunStats(e.data(), static_cast<uint32_t>(e.size()));
    EXPECT_LT(st.dup_factor, 1.5);
    EXPECT_GT(st.est_groups, 5000.0);
    EXPECT_LT(st.sortedness, 1.0);
}

TEST(AdaptiveProfilerTest, DegenerateSizesAreSafe)
{
    KeyOnly one{7};
    EXPECT_DOUBLE_EQ(sampleSortedness(&one, 0), 1.0);
    EXPECT_DOUBLE_EQ(sampleSortedness(&one, 1), 1.0);
    const WindowStats empty = sampleRunStats(&one, 0);
    EXPECT_EQ(empty.rows, 0u);
    const WindowStats single = sampleRunStats(&one, 1);
    EXPECT_DOUBLE_EQ(single.dup_factor, 1.0);
    EXPECT_DOUBLE_EQ(single.est_groups, 1.0);
}

// ------------------------------------------------------------------
// Variant policy
// ------------------------------------------------------------------

WindowStats
stats(double dup, double sortedness, double groups = 100)
{
    WindowStats s;
    s.rows = 1000;
    s.dup_factor = dup;
    s.sortedness = sortedness;
    s.est_groups = groups;
    return s;
}

TEST(AdaptivePolicyTest, DefaultsToSortMergeWithNoObservations)
{
    AdaptiveConfig cfg;
    VariantPolicy p(cfg);
    EXPECT_EQ(p.decideWindow().variant, GroupVariant::kSortMerge);
    EXPECT_EQ(p.switches(), 0u);
}

TEST(AdaptivePolicyTest, SwitchesToHashOnlyAfterConfirmation)
{
    AdaptiveConfig cfg; // confirm_windows = 2
    VariantPolicy p(cfg);
    p.observeRun(stats(/*dup=*/30.0, /*sortedness=*/0.2));
    const GroupDecision d1 = p.decideWindow();
    EXPECT_EQ(d1.variant, GroupVariant::kSortMerge)
        << "first desire must not switch yet";
    EXPECT_FALSE(d1.switched);
    p.observeRun(stats(30.0, 0.2));
    const GroupDecision d2 = p.decideWindow();
    EXPECT_EQ(d2.variant, GroupVariant::kHashScatter);
    EXPECT_TRUE(d2.switched);
    EXPECT_EQ(p.switches(), 1u);
}

TEST(AdaptivePolicyTest, SortedStreamsStayOnSortMergeDespiteDup)
{
    AdaptiveConfig cfg;
    VariantPolicy p(cfg);
    for (int i = 0; i < 10; ++i) {
        p.observeRun(stats(/*dup=*/50.0, /*sortedness=*/1.0));
        EXPECT_EQ(p.decideWindow().variant, GroupVariant::kSortMerge);
    }
    EXPECT_EQ(p.switches(), 0u);
}

TEST(AdaptivePolicyTest, NoFlapUnderOscillatingStats)
{
    AdaptiveConfig cfg;
    VariantPolicy p(cfg);
    // Raw stats oscillate hard every window; the EWMA plus the
    // confirmation requirement must not translate that into variant
    // churn: at most one switch in 200 windows.
    for (int i = 0; i < 200; ++i) {
        p.observeRun(stats(i % 2 == 0 ? 20.0 : 1.2, 0.3));
        p.decideWindow();
    }
    EXPECT_LE(p.switches(), 1u);
    EXPECT_EQ(p.decisions(), 200u);
}

TEST(AdaptivePolicyTest, DriftIsFollowedWithBoundedSwitches)
{
    AdaptiveConfig cfg;
    VariantPolicy p(cfg);
    std::vector<GroupVariant> log;
    // Three phases: heavy dup -> unique -> heavy dup. The policy must
    // land on hash, sort, hash — one switch per phase boundary plus
    // the initial one, nothing more.
    for (int i = 0; i < 120; ++i) {
        const bool dup_phase = (i / 40) % 2 == 0;
        p.observeRun(stats(dup_phase ? 25.0 : 1.1, 0.3));
        log.push_back(p.decideWindow().variant);
    }
    EXPECT_EQ(log[30], GroupVariant::kHashScatter);
    EXPECT_EQ(log[70], GroupVariant::kSortMerge);
    EXPECT_EQ(log[110], GroupVariant::kHashScatter);
    EXPECT_EQ(p.switches(), 3u);
}

TEST(AdaptivePolicyTest, TwoThousandStepRunIsBitIdentical)
{
    AdaptiveConfig cfg;
    // One deterministic stat stream, two independent policies: the
    // recorded decision log must replay bit-identically (decisions
    // are pure functions of the observed stats).
    auto run = [&cfg] {
        VariantPolicy p(cfg);
        Rng rng(1234);
        std::vector<uint8_t> log;
        for (int i = 0; i < 2000; ++i) {
            const double dup =
                1.0 + static_cast<double>(rng.nextBounded(1000)) / 25.0;
            const double sorted =
                static_cast<double>(rng.nextBounded(1000)) / 999.0;
            p.observeRun(stats(dup, sorted));
            const GroupDecision d = p.decideWindow();
            log.push_back(static_cast<uint8_t>(d.variant)
                          | (d.switched ? 0x80 : 0));
        }
        EXPECT_EQ(p.decisions(), 2000u);
        return log;
    };
    const std::vector<uint8_t> a = run();
    const std::vector<uint8_t> b = run();
    EXPECT_EQ(a, b);
    // The run must actually exercise switching at least once.
    EXPECT_TRUE(std::any_of(a.begin(), a.end(),
                            [](uint8_t x) { return (x & 0x80) != 0; }));
}

TEST(AdaptivePolicyTest, OpAdaptMemoizesPerWindowDecisions)
{
    AdaptiveConfig cfg;
    OpAdapt op(cfg);
    for (int i = 0; i < 3; ++i)
        op.policy().observeRun(stats(30.0, 0.2));
    bool sw = false;
    const GroupVariant v1 = op.groupVariantFor(7, &sw);
    const uint64_t decisions = op.policy().decisions();
    // Re-asking for the same window returns the memo, no new decision.
    const GroupVariant v2 = op.groupVariantFor(7, &sw);
    EXPECT_EQ(v1, v2);
    EXPECT_EQ(op.policy().decisions(), decisions);
    op.releaseWindow(7);
    op.groupVariantFor(8, &sw);
    EXPECT_EQ(op.policy().decisions(), decisions + 1);
}

TEST(AdaptivePolicyTest, HookRefreshAppliesHysteresisBands)
{
    AdaptiveConfig cfg;
    OpAdapt op(cfg);
    KernelAdapt &h = op.hooks();
    EXPECT_TRUE(h.sort_precheck);
    // Collapse the sortedness EWMA: the precheck turns off...
    for (int i = 0; i < 10; ++i)
        h.sort_sortedness.add(0.1, cfg.ewma_alpha);
    op.refreshHooks();
    EXPECT_FALSE(h.sort_precheck);
    // ...a value inside the dead band keeps it off...
    h.sort_sortedness.v = 0.5;
    op.refreshHooks();
    EXPECT_FALSE(h.sort_precheck);
    // ...and a high EWMA turns it back on.
    h.sort_sortedness.v = 0.9;
    op.refreshHooks();
    EXPECT_TRUE(h.sort_precheck);
}

// ------------------------------------------------------------------
// groupSortKpa vs sortKpa
// ------------------------------------------------------------------

class GroupSortTest : public ::testing::Test
{
  protected:
    sim::MachineConfig cfg_ = sim::MachineConfig::knl();
    mem::HybridMemory hm_{cfg_, sim::MemoryMode::kFlat};
    sim::CostLog log_;
    kpa::Placement hbm_{mem::Tier::kHbm, false};

    kpa::Ctx ctx() { return kpa::Ctx{hm_, log_}; }

    columnar::BundleHandle
    makeBundle(uint32_t rows, uint64_t seed, uint64_t key_range)
    {
        Rng rng(seed);
        auto b = columnar::BundleHandle::adopt(
            columnar::Bundle::create(hm_, 3, rows));
        for (uint32_t r = 0; r < rows; ++r) {
            uint64_t *row = b->appendRaw();
            row[0] = rng.nextBounded(key_range);
            row[1] = rng.nextBounded(1000);
            row[2] = r;
        }
        return b;
    }
};

TEST_F(GroupSortTest, MatchesSortKpaKeysAndPerKeyRowSets)
{
    for (const uint64_t key_range : {1ull, 3ull, 40ull, 5000ull}) {
        auto b = makeBundle(20000, key_range + 5, key_range);
        kpa::KpaPtr s = kpa::extract(ctx(), *b, 0, hbm_);
        kpa::KpaPtr g = kpa::extract(ctx(), *b, 0, hbm_);
        kpa::sortKpa(ctx(), *s);
        kpa::groupSortKpa(ctx(), *g);
        ASSERT_TRUE(g->sorted());
        ASSERT_EQ(s->size(), g->size());
        std::map<uint64_t, std::multiset<const uint64_t *>> srows,
            grows;
        for (uint32_t i = 0; i < s->size(); ++i) {
            // Identical key sequence position by position...
            EXPECT_EQ(s->at(i).key, g->at(i).key)
                << "range " << key_range << " at " << i;
            srows[s->at(i).key].insert(s->at(i).row);
            grows[g->at(i).key].insert(g->at(i).row);
        }
        // ...and identical row sets within every key.
        EXPECT_EQ(srows, grows);
    }
}

TEST_F(GroupSortTest, ChargesAreDeterministicInInput)
{
    auto b = makeBundle(8000, 3, 16);
    kpa::KpaPtr k1 = kpa::extract(ctx(), *b, 0, hbm_);
    kpa::KpaPtr k2 = kpa::extract(ctx(), *b, 0, hbm_);
    sim::CostLog l1, l2;
    kpa::groupSortKpa(kpa::Ctx{hm_, l1}, *k1);
    kpa::groupSortKpa(kpa::Ctx{hm_, l2}, *k2);
    EXPECT_EQ(l1.bytesOn(sim::Tier::kHbm), l2.bytesOn(sim::Tier::kHbm));
    EXPECT_EQ(l1.bytesOn(sim::Tier::kDram),
              l2.bytesOn(sim::Tier::kDram));
    EXPECT_DOUBLE_EQ(l1.totalCpuNs(), l2.totalCpuNs());
}

// ------------------------------------------------------------------
// Probe tuning
// ------------------------------------------------------------------

class ProbeTuningTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = algo::probeTuning(); }
    void TearDown() override { algo::setProbeTuning(saved_); }

  private:
    algo::ProbeTuning saved_;
};

TEST_F(ProbeTuningTest, UnknownLlcFallsBackToScalarPath)
{
    // sysconf reporting 0/unavailable maps to llc_bytes == 0: the
    // prefetch gate must stay off (scalar path), never crash.
    algo::ProbeTuning t;
    t.llc_bytes = 0;
    algo::setProbeTuning(t);
    algo::HashTable<uint64_t> table(10000);
    EXPECT_FALSE(table.prefetchEnabled());
    for (uint64_t k = 0; k < 1000; ++k)
        table.findOrInsert(k) = k * 2;
    uint64_t keys[4] = {1, 999, 5000, 3};
    uint64_t *out[4];
    table.findBatch(keys, 4, out);
    EXPECT_EQ(*out[0], 2u);
    EXPECT_EQ(*out[1], 1998u);
    EXPECT_EQ(out[2], nullptr);
    EXPECT_EQ(*out[3], 6u);
}

TEST_F(ProbeTuningTest, TinyLlcGatesPrefetchOn)
{
    algo::ProbeTuning t;
    t.llc_bytes = 1024;
    algo::setProbeTuning(t);
    algo::HashTable<uint64_t> table(10000); // footprint >> 1 KiB
    EXPECT_TRUE(table.prefetchEnabled());
}

TEST_F(ProbeTuningTest, ResultsIdenticalAcrossBatchAndPrefetch)
{
    algo::HashTable<uint64_t> table(20000);
    Rng rng(5);
    for (uint64_t i = 0; i < 15000; ++i)
        table.findOrInsert(rng.nextBounded(uint64_t{1} << 20)) = i;
    std::vector<uint64_t> keys;
    for (uint64_t i = 0; i < 5000; ++i)
        keys.push_back(rng.nextBounded(uint64_t{1} << 21)); // hits+misses
    std::vector<uint64_t *> ref(keys.size());
    table.setPrefetch(false);
    table.findBatch(keys.data(), static_cast<uint32_t>(keys.size()),
                    ref.data());
    for (const uint32_t b : {8u, 16u, 32u, 64u}) {
        for (const bool pf : {false, true}) {
            table.setProbeBatch(b); // 64 clamps to kMaxProbeBatch
            table.setPrefetch(pf);
            EXPECT_LE(table.probeBatch(),
                      algo::HashTable<uint64_t>::kMaxProbeBatch);
            std::vector<uint64_t *> out(keys.size());
            table.findBatch(keys.data(),
                            static_cast<uint32_t>(keys.size()),
                            out.data());
            EXPECT_EQ(out, ref) << "B=" << b << " pf=" << pf;
        }
    }
}

TEST_F(ProbeTuningTest, AutotunerHysteresisBands)
{
    AdaptiveConfig cfg; // on >= 25 ns, off <= 12 ns
    ProbeAutotuner tuner(cfg);
    EXPECT_TRUE(tuner.observe(40.0, false)) << "slow probes: enable";
    // EWMA still above the band: stays on through one fast reading.
    EXPECT_TRUE(tuner.observe(18.0, true));
    for (int i = 0; i < 10; ++i)
        tuner.observe(5.0, true);
    EXPECT_FALSE(tuner.observe(5.0, true)) << "fast probes: disable";
}

TEST_F(ProbeTuningTest, AutotuneProbeBatchPreservesResults)
{
    algo::HashTable<uint64_t> table(5000);
    for (uint64_t k = 0; k < 4000; ++k)
        table.findOrInsert(k * 7) = k;
    std::vector<uint64_t> keys;
    for (uint64_t k = 0; k < 2000; ++k)
        keys.push_back(k * 14);
    const uint32_t b = autotuneProbeBatch(
        table, keys.data(), static_cast<uint32_t>(keys.size()));
    EXPECT_EQ(table.probeBatch(), b);
    EXPECT_TRUE(b == 8 || b == 16 || b == 32);
    uint64_t *out = nullptr;
    uint64_t key = 14;
    table.findBatch(&key, 1, &out);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 2u);
}

// ------------------------------------------------------------------
// End to end: adaptation on == adaptation off, deterministically
// ------------------------------------------------------------------

/** bundle -> KPA extractor (key column 0). */
class ExtractOp : public pipeline::Operator
{
  public:
    explicit ExtractOp(pipeline::Pipeline &pipe)
        : Operator(pipe, "extract")
    {
    }

  protected:
    void
    process(pipeline::Msg msg, int) override
    {
        const ImpactTag tag = classify(msg.min_ts);
        spawnTracked(tag, [this, tag, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &em) mutable {
            auto ctx = makeCtx(log, msg.bundle->cols());
            auto out = kpa::extract(
                ctx, *msg.bundle, ingest::KvGen::kKeyCol,
                eng_.placeKpa(tag,
                              uint64_t{msg.bundle->size()} * 16));
            em.push(pipeline::Msg::ofKpa(std::move(out), msg.min_ts));
        });
    }
};

/** KeyedAggOp with its adaptive session readable from tests. */
class ProbeAggOp : public pipeline::KeyedAggOp
{
  public:
    using KeyedAggOp::KeyedAggOp;

    const OpAdapt *adaptSession() const { return opAdapt(); }
};

class AdaptiveEndToEndTest : public ::testing::Test
{
  protected:
    struct RunResult
    {
        uint64_t output_records = 0;
        uint64_t windows = 0;
        SimTime finished_at = 0;
        uint64_t sort_windows = 0;
        uint64_t hash_windows = 0;
    };

    RunResult
    run(bool adaptive, uint64_t records, uint64_t key_range,
        obs::Telemetry *tele = nullptr)
    {
        EngineConfig ecfg;
        ecfg.cores = 8;
        ecfg.adaptive.enabled = adaptive;
        Engine eng(ecfg);
        if (tele != nullptr)
            eng.setTelemetry(tele);
        pipeline::Pipeline pipe(eng,
                                columnar::WindowSpec{100 * kNsPerMs});
        auto &extract = pipe.add<ExtractOp>(pipe);
        auto &window = pipe.add<pipeline::WindowOp>(
            pipe, "window", ingest::KvGen::kTsCol);
        auto &agg = pipe.add<ProbeAggOp>(
            pipe, "agg", ingest::KvGen::kKeyCol,
            pipeline::aggs::sumPerKey(ingest::KvGen::kValueCol));
        auto &egress = pipe.add<pipeline::EgressOp>(pipe);
        extract.connectTo(&window);
        window.connectTo(&agg);
        agg.connectTo(&egress);

        ingest::KvGen gen(7, key_range, 1000);
        ingest::SourceConfig scfg;
        scfg.bundle_records = 1000;
        // Pace the stream across many 100 ms windows (NIC-limited
        // ingestion would cram everything into one window and give
        // the policy a single decision).
        scfg.offered_rate = 60000;
        scfg.total_records = records;
        ingest::Source src(eng, pipe, gen, &extract, scfg);
        src.start();
        eng.machine().run();

        RunResult r;
        r.output_records = egress.outputRecords();
        r.windows = pipe.windowsExternalized();
        r.finished_at = eng.machine().now();
        if (const OpAdapt *a = agg.adaptSession()) {
            r.sort_windows = a->sortMergeWindows();
            r.hash_windows = a->hashScatterWindows();
        }
        return r;
    }
};

TEST_F(AdaptiveEndToEndTest, SameResultsOnAndOffAndDeterministic)
{
    // Heavy duplication (5 keys: sampled dup factor ~25, far above
    // dup_hash_min): adaptation routes windows through the
    // hash-scatter close, yet every emitted result is identical.
    const RunResult off = run(false, 100000, 5);
    const RunResult on1 = run(true, 100000, 5);
    const RunResult on2 = run(true, 100000, 5);
    EXPECT_EQ(on1.output_records, off.output_records);
    EXPECT_EQ(on1.windows, off.windows);
    // Same seed => same stats => same decisions => same CostLogs:
    // virtual completion time is bit-identical across adaptive runs.
    EXPECT_EQ(on1.finished_at, on2.finished_at);
    EXPECT_EQ(on1.output_records, on2.output_records);
    EXPECT_EQ(on1.sort_windows, on2.sort_windows);
    EXPECT_EQ(on1.hash_windows, on2.hash_windows);
    // The dup-heavy stream must actually engage the hash variant.
    EXPECT_GT(on1.hash_windows, 0u);
}

TEST_F(AdaptiveEndToEndTest, UniqueKeysStayOnSortMerge)
{
    const RunResult on = run(true, 40000, uint64_t{1} << 30);
    EXPECT_EQ(on.hash_windows, 0u);
    EXPECT_GT(on.sort_windows, 0u);
}

TEST_F(AdaptiveEndToEndTest, DecisionsLandInTelemetry)
{
    obs::Telemetry tele;
    const RunResult on = run(true, 100000, 5, &tele);
    const uint64_t sort_count =
        tele.metrics
            .counter(obs::MetricsRegistry::path(
                {"adapt", "agg", "sort_merge"}))
            .value;
    const uint64_t hash_count =
        tele.metrics
            .counter(obs::MetricsRegistry::path(
                {"adapt", "agg", "hash_scatter"}))
            .value;
    EXPECT_EQ(sort_count, on.sort_windows);
    EXPECT_EQ(hash_count, on.hash_windows);
    EXPECT_EQ(sort_count + hash_count, on.windows);
}

} // namespace
} // namespace sbhbm::runtime
