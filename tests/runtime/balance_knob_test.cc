#include "runtime/balance_knob.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sbhbm::runtime {
namespace {

TEST(BalanceKnob, StartsFullyOnHbm)
{
    BalanceKnob k;
    EXPECT_DOUBLE_EQ(k.kLow(), 1.0);
    EXPECT_DOUBLE_EQ(k.kHigh(), 1.0);
}

TEST(BalanceKnob, UrgentAlwaysPrefersHbm)
{
    BalanceKnob k;
    Rng rng(1);
    // Even with both probabilities at zero.
    for (int i = 0; i < 40; ++i)
        k.update(/*hbm=*/0.99, /*dram_bw=*/0.1, true);
    EXPECT_DOUBLE_EQ(k.kLow(), 0.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(k.preferHbm(ImpactTag::kUrgent, rng));
}

TEST(BalanceKnob, HbmPressureLowersKLowFirst)
{
    BalanceKnob k;
    k.update(0.9, 0.2, true);
    EXPECT_DOUBLE_EQ(k.kLow(), 0.95);
    EXPECT_DOUBLE_EQ(k.kHigh(), 1.0);
    // 19 more steps: k_low hits 0; k_high still untouched.
    for (int i = 0; i < 19; ++i)
        k.update(0.9, 0.2, true);
    EXPECT_DOUBLE_EQ(k.kLow(), 0.0);
    EXPECT_DOUBLE_EQ(k.kHigh(), 1.0);
    // Next step moves k_high (headroom ok).
    k.update(0.9, 0.2, true);
    EXPECT_DOUBLE_EQ(k.kHigh(), 0.95);
}

TEST(BalanceKnob, KHighFrozenWithoutDelayHeadroom)
{
    BalanceKnob k;
    for (int i = 0; i < 25; ++i)
        k.update(0.9, 0.2, /*headroom=*/false);
    EXPECT_DOUBLE_EQ(k.kLow(), 0.0);
    EXPECT_DOUBLE_EQ(k.kHigh(), 1.0) << "k_high needs 10% delay headroom";
}

TEST(BalanceKnob, DramSaturationRaisesBackToHbm)
{
    BalanceKnob k;
    for (int i = 0; i < 10; ++i)
        k.update(0.9, 0.2, true); // push down to 0.5
    EXPECT_DOUBLE_EQ(k.kLow(), 0.5);
    // DRAM bandwidth saturated, HBM has room: pull back.
    for (int i = 0; i < 4; ++i)
        k.update(0.4, 0.95, true);
    EXPECT_DOUBLE_EQ(k.kLow(), 0.7);
}

TEST(BalanceKnob, BothSaturatedHoldsSteady)
{
    BalanceKnob k;
    for (int i = 0; i < 5; ++i)
        k.update(0.9, 0.2, true);
    const double low = k.kLow();
    // Top-right corner of Fig 6: both at their limit -> back-pressure
    // territory, knob holds.
    for (int i = 0; i < 10; ++i)
        k.update(0.95, 0.95, true);
    EXPECT_DOUBLE_EQ(k.kLow(), low);
}

TEST(BalanceKnob, ComfortableStateDriftsBackToDefault)
{
    BalanceKnob k;
    for (int i = 0; i < 6; ++i)
        k.update(0.9, 0.2, true);
    EXPECT_LT(k.kLow(), 1.0);
    for (int i = 0; i < 50; ++i)
        k.update(0.2, 0.2, true); // low demand on both
    EXPECT_DOUBLE_EQ(k.kLow(), 1.0);
}

TEST(BalanceKnob, ProbabilitiesDrivePlacementFrequency)
{
    BalanceKnob k;
    for (int i = 0; i < 10; ++i)
        k.update(0.9, 0.2, true); // k_low = 0.5
    Rng rng(7);
    int hbm = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i)
        hbm += k.preferHbm(ImpactTag::kLow, rng) ? 1 : 0;
    EXPECT_NEAR(hbm / static_cast<double>(trials), 0.5, 0.02);
    // High tasks still always HBM (k_high untouched at 1.0).
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(k.preferHbm(ImpactTag::kHigh, rng));
}

TEST(BalanceKnob, KnobClampedToUnitRange)
{
    BalanceKnob k;
    for (int i = 0; i < 100; ++i)
        k.update(0.9, 0.2, true);
    EXPECT_GE(k.kLow(), 0.0);
    EXPECT_GE(k.kHigh(), 0.0);
    for (int i = 0; i < 200; ++i)
        k.update(0.1, 0.95, true);
    EXPECT_LE(k.kLow(), 1.0);
    EXPECT_LE(k.kHigh(), 1.0);
}

} // namespace
} // namespace sbhbm::runtime
