#include "runtime/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"

namespace sbhbm::runtime {
namespace {

EngineConfig
smallConfig()
{
    EngineConfig cfg;
    cfg.cores = 8;
    return cfg;
}

TEST(Engine, UrgentPlacementAlwaysHbmReserved)
{
    Engine e(smallConfig());
    for (int i = 0; i < 50; ++i) {
        auto p = e.placeKpa(ImpactTag::kUrgent, 1_MiB);
        EXPECT_EQ(p.tier, mem::Tier::kHbm);
        EXPECT_TRUE(p.urgent);
    }
}

TEST(Engine, DefaultPlacementIsHbm)
{
    Engine e(smallConfig());
    // Knob starts at {1, 1}: everything prefers HBM.
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(e.placeKpa(ImpactTag::kLow, 1_MiB).tier,
                  mem::Tier::kHbm);
        EXPECT_EQ(e.placeKpa(ImpactTag::kHigh, 1_MiB).tier,
                  mem::Tier::kHbm);
    }
}

TEST(Engine, PlacementSpillsWhenHbmLacksRoom)
{
    auto cfg = smallConfig();
    cfg.machine.hbm.capacity_bytes = 1_MiB;
    Engine e(cfg);
    // Request larger than non-reserved HBM: must place on DRAM.
    auto p = e.placeKpa(ImpactTag::kHigh, 2_MiB);
    EXPECT_EQ(p.tier, mem::Tier::kDram);
    EXPECT_FALSE(p.urgent);
}

TEST(Engine, NonFlatModesAlwaysPlaceDram)
{
    auto cfg = smallConfig();
    cfg.mode = sim::MemoryMode::kCache;
    Engine e(cfg);
    EXPECT_EQ(e.placeKpa(ImpactTag::kUrgent, 1_MiB).tier,
              mem::Tier::kDram);
    EXPECT_EQ(e.placeKpa(ImpactTag::kLow, 1_MiB).tier, mem::Tier::kDram);
}

TEST(Engine, DelayHeadroomTracksTarget)
{
    Engine e(smallConfig()); // target 1 s
    e.reportOutputDelay(500 * kNsPerMs);
    EXPECT_TRUE(e.delayHeadroomOk());
    e.reportOutputDelay(950 * kNsPerMs);
    EXPECT_FALSE(e.delayHeadroomOk());
    EXPECT_EQ(e.outputDelays().size(), 2u);
}

TEST(Engine, BackpressureEngagesAtCreditLimit)
{
    auto cfg = smallConfig();
    cfg.max_inflight_bundles = 3;
    Engine e(cfg);
    EXPECT_FALSE(e.backpressured());
    e.noteBundleIn();
    e.noteBundleIn();
    e.noteBundleIn();
    EXPECT_TRUE(e.backpressured());
    e.noteBundleOut();
    EXPECT_FALSE(e.backpressured());
    EXPECT_EQ(e.inflightBundles(), 2u);
}

TEST(Engine, MonitorSamplesAndDrivesKnob)
{
    auto cfg = smallConfig();
    cfg.machine.hbm.capacity_bytes = 10_MiB;
    Engine e(cfg);
    e.reportOutputDelay(100 * kNsPerMs); // plenty of headroom

    // Fill HBM past the high threshold: knob must start spilling.
    std::vector<mem::Block> blocks;
    for (int i = 0; i < 9; ++i) {
        blocks.push_back(e.memory().alloc(1_MiB, mem::Tier::kHbm));
        ASSERT_EQ(blocks.back().tier, mem::Tier::kHbm);
    }

    e.monitor().start();
    e.machine().runUntil(200 * kNsPerMs);
    e.monitor().stop();
    e.machine().run();

    EXPECT_GE(e.monitor().samples().size(), 19u);
    EXPECT_LT(e.knob().kLow(), 1.0) << "knob should have shifted to DRAM";
    for (auto &b : blocks)
        e.memory().free(b);
}

TEST(Engine, MonitorStopsCleanly)
{
    Engine e(smallConfig());
    e.monitor().start();
    e.machine().runUntil(50 * kNsPerMs);
    e.monitor().stop();
    e.machine().run(); // must terminate (no self-perpetuating events)
    EXPECT_FALSE(e.monitor().running());
}

TEST(Engine, NoKpaConfigExposed)
{
    auto cfg = smallConfig();
    cfg.use_kpa = false;
    Engine e(cfg);
    EXPECT_FALSE(e.useKpa());
}

} // namespace
} // namespace sbhbm::runtime
