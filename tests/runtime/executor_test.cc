#include "runtime/executor.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"
#include "sim/machine.h"

namespace sbhbm::runtime {
namespace {

sim::MachineConfig
testConfig(unsigned cores = 4)
{
    auto cfg = sim::MachineConfig::knl();
    cfg.cores = cores;
    return cfg;
}

TEST(Executor, RunsATaskAndItsCompletion)
{
    sim::Machine m(testConfig());
    Executor ex(m, 4);
    bool ran = false, done = false;
    ex.spawn(
        ImpactTag::kHigh,
        [&](sim::CostLog &log) {
            ran = true;
            log.cpu(1000);
        },
        [&] { done = true; });
    EXPECT_TRUE(ran) << "task body runs at dispatch";
    EXPECT_FALSE(done) << "completion only in virtual time";
    m.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(ex.completedTasks(), 1u);
    EXPECT_TRUE(ex.idle());
}

TEST(Executor, AtMostCoresTasksInFlight)
{
    sim::Machine m(testConfig(4));
    Executor ex(m, 2);
    // 6 equal CPU tasks of 1 us on 2 cores => 3 serial waves, 3 us.
    SimTime last_done = 0;
    for (int i = 0; i < 6; ++i) {
        ex.spawn(
            ImpactTag::kHigh,
            [](sim::CostLog &log) { log.cpu(1000); },
            [&] { last_done = m.now(); });
    }
    EXPECT_EQ(ex.busyCores(), 2u);
    EXPECT_EQ(ex.queuedTasks(), 4u);
    m.run();
    // Dispatch overhead adds kTaskDispatchNs per task.
    const double per_task = 1000 + sim::cost::kTaskDispatchNs;
    EXPECT_NEAR(static_cast<double>(last_done), 3 * per_task, 30);
}

TEST(Executor, UrgentTasksPreemptQueueOrder)
{
    sim::Machine m(testConfig(4));
    Executor ex(m, 1);
    std::vector<int> order;
    auto task = [&](int id) {
        return [&order, id](sim::CostLog &log) {
            order.push_back(id);
            log.cpu(100);
        };
    };
    // Occupy the core, then queue low, high, urgent.
    ex.spawn(ImpactTag::kLow, task(0));
    ex.spawn(ImpactTag::kLow, task(1));
    ex.spawn(ImpactTag::kHigh, task(2));
    ex.spawn(ImpactTag::kUrgent, task(3));
    m.run();
    EXPECT_EQ(order, (std::vector<int>{0, 3, 2, 1}));
}

TEST(Executor, FifoWithinSameTag)
{
    sim::Machine m(testConfig(4));
    Executor ex(m, 1);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        ex.spawn(ImpactTag::kHigh, [&order, i](sim::CostLog &log) {
            order.push_back(i);
            log.cpu(10);
        });
    }
    m.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Executor, ParallelForJoinsAllShards)
{
    sim::Machine m(testConfig(8));
    Executor ex(m, 8);
    uint32_t sum = 0;
    bool all_done = false;
    SimTime done_at = 0;
    ex.parallelFor(
        ImpactTag::kHigh, 16,
        [&](uint32_t i, sim::CostLog &log) {
            sum += i;
            log.cpu(1000);
        },
        [&] {
            all_done = true;
            done_at = m.now();
        });
    m.run();
    EXPECT_TRUE(all_done);
    EXPECT_EQ(sum, 120u);
    // 16 tasks on 8 cores: two waves.
    const double per_task = 1000 + sim::cost::kTaskDispatchNs;
    EXPECT_NEAR(static_cast<double>(done_at), 2 * per_task, 20);
}

TEST(Executor, ParallelForZeroShardsStillCompletes)
{
    sim::Machine m(testConfig());
    Executor ex(m, 2);
    bool done = false;
    ex.parallelFor(
        ImpactTag::kHigh, 0, [](uint32_t, sim::CostLog &) {},
        [&] { done = true; });
    EXPECT_FALSE(done);
    m.run();
    EXPECT_TRUE(done);
}

TEST(Executor, CompletionMaySpawnMoreTasks)
{
    sim::Machine m(testConfig());
    Executor ex(m, 2);
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 4) {
            ex.spawn(
                ImpactTag::kHigh,
                [](sim::CostLog &log) { log.cpu(100); },
                chain);
        }
    };
    ex.spawn(
        ImpactTag::kHigh, [](sim::CostLog &log) { log.cpu(100); }, chain);
    m.run();
    EXPECT_EQ(depth, 4);
    EXPECT_EQ(ex.completedTasks(), 4u);
}

TEST(Executor, MemoryContentionDelaysCompletionOfParallelTasks)
{
    // 8 tasks each streaming 1 GB from DRAM (80 GB/s peak, 5.6 GB/s
    // per-core cap on KNL): 8 flows run at their cap (44.8 < 80).
    sim::Machine m(testConfig(8));
    Executor ex(m, 8);
    SimTime done_at = 0;
    for (int i = 0; i < 8; ++i) {
        ex.spawn(
            ImpactTag::kHigh,
            [](sim::CostLog &log) {
                log.seq(sim::Tier::kDram, 1000000000ull);
            },
            [&] { done_at = m.now(); });
    }
    m.run();
    EXPECT_NEAR(static_cast<double>(done_at), 1e9 / 5.6, 3e6);
}

TEST(ExecutorDeath, MoreCoresThanMachinePanics)
{
    sim::Machine m(testConfig(4));
    EXPECT_DEATH(Executor(m, 5), "core count");
}

TEST(Executor, StreamStatsAccumulatePerStream)
{
    sim::Machine m(testConfig(4));
    Executor ex(m, 4);
    ex.spawn(
        ImpactTag::kHigh,
        [](sim::CostLog &log) {
            log.cpu(1000);
            log.seq(sim::Tier::kHbm, 64);
        },
        nullptr, /*stream=*/1);
    ex.spawn(
        ImpactTag::kLow,
        [](sim::CostLog &log) {
            log.cpu(500);
            log.seq(sim::Tier::kDram, 128);
        },
        nullptr, /*stream=*/2);
    ex.spawn(
        ImpactTag::kLow, [](sim::CostLog &log) { log.cpu(500); },
        nullptr, /*stream=*/2);
    m.run();

    const auto &s1 = ex.streamStats(1);
    const auto &s2 = ex.streamStats(2);
    EXPECT_EQ(s1.spawned, 1u);
    EXPECT_EQ(s1.completed, 1u);
    EXPECT_EQ(s1.hbm_bytes, 64u);
    EXPECT_EQ(s1.dram_bytes, 0u);
    EXPECT_EQ(s2.spawned, 2u);
    EXPECT_EQ(s2.completed, 2u);
    EXPECT_EQ(s2.dram_bytes, 128u);
    // Costs include the dispatch overhead on top of the task body.
    EXPECT_DOUBLE_EQ(s1.cpu_ns, 1000.0 + sim::cost::kTaskDispatchNs);
    EXPECT_DOUBLE_EQ(s2.cpu_ns, 1000.0 + 2 * sim::cost::kTaskDispatchNs);
    EXPECT_EQ(ex.streamStats(3).spawned, 0u) << "unknown stream zeroed";
}

TEST(Executor, DefaultPolicyIsTagPriorityFifoAcrossStreams)
{
    sim::Machine m(testConfig(4));
    Executor ex(m, 1); // one core: dispatch order fully observable
    std::vector<int> order;
    auto task = [&](int id) {
        return [&order, id](sim::CostLog &log) {
            order.push_back(id);
            log.cpu(100);
        };
    };
    // Hold the core with a running task so the rest queue up.
    ex.spawn(ImpactTag::kLow, task(0));
    ex.spawn(ImpactTag::kLow, task(1), nullptr, 2);
    ex.spawn(ImpactTag::kHigh, task(2), nullptr, 3);
    ex.spawn(ImpactTag::kHigh, task(3), nullptr, 1);
    ex.spawn(ImpactTag::kUrgent, task(4), nullptr, 2);
    m.run();
    // Urgent first, then the Highs in enqueue order (stream ids must
    // not matter), then the Low.
    EXPECT_EQ(order, (std::vector<int>{0, 4, 2, 3, 1}));
}

TEST(Executor, CustomDispatchPolicyIsConsulted)
{
    /** Serves the largest stream id first, Lows before Highs. */
    struct ReversePolicy final : DispatchPolicy
    {
        Choice
        pick(const std::vector<StreamBacklog> &backlog) override
        {
            const StreamBacklog &b = backlog.back();
            for (int t = kNumTags - 1; t >= 0; --t) {
                if (b.depth[t] > 0)
                    return Choice{b.stream, static_cast<ImpactTag>(t)};
            }
            return Choice{b.stream, ImpactTag::kUrgent};
        }
    };

    sim::Machine m(testConfig(4));
    Executor ex(m, 1);
    ReversePolicy policy;
    ex.setDispatchPolicy(&policy);
    std::vector<int> order;
    auto task = [&](int id) {
        return [&order, id](sim::CostLog &log) {
            order.push_back(id);
            log.cpu(100);
        };
    };
    ex.spawn(ImpactTag::kUrgent, task(0)); // runs immediately
    ex.spawn(ImpactTag::kUrgent, task(1), nullptr, 1);
    ex.spawn(ImpactTag::kLow, task(2), nullptr, 1);
    ex.spawn(ImpactTag::kHigh, task(3), nullptr, 2);
    m.run();
    // Stream 2 outranks stream 1; within stream 1, Low before Urgent.
    EXPECT_EQ(order, (std::vector<int>{0, 3, 2, 1}));
}

} // namespace
} // namespace sbhbm::runtime
