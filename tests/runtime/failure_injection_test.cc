/**
 * @file
 * Failure-injection tests: the engine's behaviour at resource
 * exhaustion boundaries — HBM capacity spill, the urgent reserve,
 * DRAM exhaustion (fatal), and the ingestion deadlock guard.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ingest/generator.h"
#include "ingest/source.h"
#include "pipeline/egress.h"
#include "pipeline/pipeline.h"
#include "runtime/engine.h"

namespace sbhbm::runtime {
namespace {

EngineConfig
tinyHbmConfig(uint64_t hbm_bytes)
{
    EngineConfig cfg;
    cfg.cores = 4;
    cfg.machine.hbm.capacity_bytes = hbm_bytes;
    return cfg;
}

TEST(FailureInjection, HbmExhaustionSpillsToDram)
{
    Engine e(tinyHbmConfig(4_MiB));
    std::vector<mem::Block> blocks;
    // Request far more than HBM holds; allocations must spill, never
    // fail, and accounting must stay exact.
    for (int i = 0; i < 64; ++i) {
        blocks.push_back(e.memory().alloc(256_KiB, mem::Tier::kHbm));
        ASSERT_TRUE(blocks.back());
    }
    uint64_t on_hbm = 0, on_dram = 0;
    for (const auto &b : blocks)
        (b.tier == mem::Tier::kHbm ? on_hbm : on_dram) += b.charged_bytes;
    EXPECT_GT(on_hbm, 0u);
    EXPECT_GT(on_dram, 0u) << "spill did not happen";
    EXPECT_LE(e.memory().gauge(mem::Tier::kHbm).used(), 4_MiB);
    EXPECT_EQ(e.memory().gauge(mem::Tier::kHbm).used(), on_hbm);
    EXPECT_EQ(e.memory().gauge(mem::Tier::kDram).used(), on_dram);
    for (auto &b : blocks)
        e.memory().free(b);
    EXPECT_EQ(e.memory().gauge(mem::Tier::kHbm).used(), 0u);
    EXPECT_EQ(e.memory().gauge(mem::Tier::kDram).used(), 0u);
}

TEST(FailureInjection, UrgentReserveSurvivesNonUrgentPressure)
{
    Engine e(tinyHbmConfig(10_MiB));
    // Fill all non-reserved HBM with non-urgent blocks.
    std::vector<mem::Block> filler;
    while (e.memory().hbmHasRoom(64_KiB))
        filler.push_back(e.memory().alloc(64_KiB, mem::Tier::kHbm));
    // A non-urgent request now spills...
    mem::Block spilled = e.memory().alloc(64_KiB, mem::Tier::kHbm);
    EXPECT_EQ(spilled.tier, mem::Tier::kDram);
    // ...but an urgent one still lands on HBM (the reserved pool).
    mem::Block urgent =
        e.memory().alloc(64_KiB, mem::Tier::kHbm, /*urgent=*/true);
    EXPECT_EQ(urgent.tier, mem::Tier::kHbm);
    e.memory().free(spilled);
    e.memory().free(urgent);
    for (auto &b : filler)
        e.memory().free(b);
}

TEST(FailureInjection, PlacementFallsBackUnderHbmPressure)
{
    Engine e(tinyHbmConfig(2_MiB));
    // Exhaust non-reserved HBM.
    std::vector<mem::Block> filler;
    while (e.memory().hbmHasRoom(256_KiB))
        filler.push_back(e.memory().alloc(256_KiB, mem::Tier::kHbm));
    // Low/High placements must choose DRAM now.
    const auto p_low = e.placeKpa(ImpactTag::kLow, 256_KiB);
    const auto p_high = e.placeKpa(ImpactTag::kHigh, 256_KiB);
    EXPECT_EQ(p_low.tier, mem::Tier::kDram);
    EXPECT_EQ(p_high.tier, mem::Tier::kDram);
    // Urgent still goes to the HBM reserve.
    const auto p_urgent = e.placeKpa(ImpactTag::kUrgent, 64_KiB);
    EXPECT_EQ(p_urgent.tier, mem::Tier::kHbm);
    EXPECT_TRUE(p_urgent.urgent);
    for (auto &b : filler)
        e.memory().free(b);
}

using FailureInjectionDeath = ::testing::Test;

TEST(FailureInjectionDeath, DramExhaustionIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            EngineConfig cfg;
            cfg.cores = 2;
            cfg.machine.dram.capacity_bytes = 1_MiB;
            cfg.machine.hbm.capacity_bytes = 1_MiB;
            Engine e(cfg);
            std::vector<mem::Block> blocks;
            for (int i = 0; i < 64; ++i)
                blocks.push_back(
                    e.memory().alloc(256_KiB, mem::Tier::kDram));
        },
        "DRAM exhausted");
}

TEST(FailureInjectionDeath, IngestionDeadlockGuardFires)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            // An in-flight budget that cannot cover one window, with
            // a sink that holds bundles until its window closes —
            // which it never can. The guard must abort with a clear
            // message instead of spinning forever.
            EngineConfig cfg;
            cfg.cores = 2;
            cfg.max_inflight_bundles = 2;
            Engine eng(cfg);
            pipeline::Pipeline pipe(eng,
                                    columnar::WindowSpec{kNsPerSec});

            class HoldSink : public pipeline::Operator
            {
              public:
                explicit HoldSink(pipeline::Pipeline &p)
                    : Operator(p, "hold")
                {
                }
                std::vector<pipeline::Msg> held;

              protected:
                void
                process(pipeline::Msg msg, int) override
                {
                    held.push_back(std::move(msg));
                }
            };
            auto &hold = pipe.add<HoldSink>(pipe);

            ingest::KvGen gen(1, 10, 10);
            ingest::SourceConfig scfg;
            scfg.bundle_records = 1000;
            scfg.total_records = 1'000'000;
            ingest::Source src(eng, pipe, gen, &hold, scfg);
            src.start();
            eng.machine().run();
        },
        "back-pressured");
}

} // namespace
} // namespace sbhbm::runtime
