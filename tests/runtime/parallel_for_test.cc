/**
 * @file
 * The fork-join contract of the host WorkerPool and its integration
 * with the executor: deterministic results at every thread count,
 * inline degradation at 1 thread, nested-dispatch safety, exception
 * propagation, and — for the *simulated* Executor::parallelFor —
 * arbitration of shard dispatch by the installed DispatchPolicy
 * (FairScheduler interleaves tenants where the default policy runs
 * them back to back).
 */

#include "common/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/executor.h"
#include "serve/fair_scheduler.h"
#include "sim/machine.h"

namespace sbhbm::runtime {
namespace {

sim::MachineConfig
testConfig(unsigned cores = 4)
{
    auto cfg = sim::MachineConfig::knl();
    cfg.cores = cores;
    return cfg;
}

/** A shard result that depends on the shard id alone. */
uint64_t
shardValue(uint32_t s)
{
    uint64_t v = s + 1;
    for (int i = 0; i < 8; ++i)
        v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    return v;
}

TEST(WorkerPool, DeterministicAcrossThreadCounts)
{
    constexpr uint32_t kShards = 257; // not a multiple of anything
    std::vector<uint64_t> want(kShards);
    for (uint32_t s = 0; s < kShards; ++s)
        want[s] = shardValue(s);

    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        WorkerPool pool(threads);
        std::vector<uint64_t> got(kShards, 0);
        // Several consecutive jobs on one pool: reuse must be clean.
        for (int round = 0; round < 3; ++round) {
            std::fill(got.begin(), got.end(), 0);
            pool.parallelFor(kShards, [&](uint32_t s) {
                got[s] = shardValue(s);
            });
            EXPECT_EQ(got, want) << threads << " threads, round "
                                 << round;
        }
    }
}

TEST(WorkerPool, OneThreadRunsEveryShardInlineOnCaller)
{
    WorkerPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    const std::thread::id caller = std::this_thread::get_id();
    uint32_t ran = 0;
    pool.parallelFor(17, [&](uint32_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++ran; // safe: inline means strictly sequential
    });
    EXPECT_EQ(ran, 17u);
}

TEST(WorkerPool, ZeroShardsIsANoop)
{
    WorkerPool pool(4);
    pool.parallelFor(0, [](uint32_t) { FAIL() << "no shards to run"; });
}

TEST(WorkerPool, NestedDispatchRunsInlineAndCompletes)
{
    WorkerPool pool(4);
    constexpr uint32_t kOuter = 8, kInner = 16;
    std::vector<uint64_t> got(kOuter * kInner, 0);
    pool.parallelFor(kOuter, [&](uint32_t o) {
        // A kernel inside a shard may itself call parallelFor (e.g.
        // a sharded reduce whose shards sort): the nested call must
        // run inline rather than deadlock waiting on the pool's own
        // workers.
        EXPECT_TRUE(WorkerPool::inShard());
        const std::thread::id me = std::this_thread::get_id();
        pool.parallelFor(kInner, [&, o, me](uint32_t i) {
            EXPECT_EQ(std::this_thread::get_id(), me);
            got[o * kInner + i] = shardValue(o * kInner + i);
        });
    });
    EXPECT_FALSE(WorkerPool::inShard());
    for (uint32_t x = 0; x < kOuter * kInner; ++x)
        EXPECT_EQ(got[x], shardValue(x));
}

TEST(WorkerPool, RethrowsLowestShardExceptionAndSurvives)
{
    for (unsigned threads : {2u, 4u, 8u}) {
        WorkerPool pool(threads);
        std::atomic<uint32_t> ran{0};
        try {
            pool.parallelFor(32, [&](uint32_t s) {
                ran.fetch_add(1);
                if (s == 7 || s == 13)
                    throw std::runtime_error("shard "
                                             + std::to_string(s));
            });
            FAIL() << "expected a rethrow";
        } catch (const std::runtime_error &e) {
            // Both shards threw on some thread; the winner is the
            // lowest shard index no matter the interleaving.
            EXPECT_STREQ(e.what(), "shard 7");
        }
        EXPECT_EQ(ran.load(), 32u) << "barrier still joins all shards";

        // The pool must stay usable after a failed job.
        std::vector<uint64_t> got(8, 0);
        pool.parallelFor(8, [&](uint32_t s) { got[s] = s + 1; });
        for (uint32_t s = 0; s < 8; ++s)
            EXPECT_EQ(got[s], s + 1);
    }
}

TEST(WorkerPool, InlinePathMatchesPooledFailureSemantics)
{
    // Same contract as the pooled path: every shard still runs, and
    // the lowest-indexed shard's exception is rethrown afterwards —
    // so side effects on the failure path are identical at every
    // thread count.
    WorkerPool pool(1);
    uint32_t ran = 0;
    try {
        pool.parallelFor(4, [&](uint32_t s) {
            ++ran;
            if (s == 2)
                throw std::logic_error("boom");
        });
        FAIL() << "expected a rethrow";
    } catch (const std::logic_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }
    EXPECT_EQ(ran, 4u);
}

TEST(Executor, HostPoolDefaultsLazilyAndHonorsSetHostThreads)
{
    sim::Machine m(testConfig());
    Executor ex(m, 4);
    ex.setHostThreads(3);
    EXPECT_EQ(ex.hostPool().threads(), 3u);
    uint64_t sum = 0;
    std::vector<uint64_t> per(64, 0);
    ex.hostParallelFor(64, [&](uint32_t s) { per[s] = s; });
    for (uint64_t v : per)
        sum += v;
    EXPECT_EQ(sum, 64u * 63u / 2);
}

/**
 * Simulated fork-join x dispatch policy: every shard of a tenant's
 * parallelFor is an ordinary spawn, so the FairScheduler interleaves
 * two tenants' shard streams where the default tag-priority policy
 * would drain them in global FIFO (all of tenant 1, then tenant 2).
 */
TEST(Executor, ParallelForShardsAreArbitratedByFairScheduler)
{
    constexpr uint32_t kShards = 6;

    auto run = [&](DispatchPolicy *policy) {
        sim::Machine m(testConfig(4));
        Executor ex(m, 1); // one core => the policy picks every task
        ex.setDispatchPolicy(policy);
        std::vector<StreamId> order;
        bool done1 = false, done2 = false;
        for (StreamId stream : {StreamId{1}, StreamId{2}}) {
            ex.parallelFor(
                ImpactTag::kHigh, kShards,
                [&order, stream](uint32_t, sim::CostLog &log) {
                    order.push_back(stream);
                    log.cpu(1000);
                },
                [&done1, &done2, stream] {
                    (stream == 1 ? done1 : done2) = true;
                },
                stream);
        }
        m.run();
        EXPECT_TRUE(done1);
        EXPECT_TRUE(done2);
        EXPECT_EQ(order.size(), 2 * kShards);
        return order;
    };

    // Default policy: global FIFO within the tag — stream 1's shards
    // all dispatch before stream 2's.
    const auto fifo = run(nullptr);
    for (uint32_t i = 0; i < kShards; ++i) {
        EXPECT_EQ(fifo[i], 1u);
        EXPECT_EQ(fifo[kShards + i], 2u);
    }

    // FairScheduler, equal weights: the two backlogs interleave —
    // stream 2 dispatches shards before stream 1 has drained.
    serve::FairScheduler fair;
    fair.setWeight(1, 1.0);
    fair.setWeight(2, 1.0);
    const auto shared = run(&fair);
    uint32_t first2 = 0;
    while (first2 < shared.size() && shared[first2] == 1u)
        ++first2;
    EXPECT_LT(first2, kShards)
        << "fair policy should serve stream 2 before stream 1 drains";
    // And no stream is starved at the tail either: both streams
    // appear in the final kShards dispatches' window.
    std::set<StreamId> tail(shared.end() - kShards, shared.end());
    EXPECT_EQ(tail.size(), 2u);
}

} // namespace
} // namespace sbhbm::runtime
