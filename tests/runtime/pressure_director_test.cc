/**
 * @file
 * The memory control plane's decision points:
 *  - KnobPlacementPolicy reproduces the legacy inline placement logic
 *    bit for bit (same RNG draws, same spill conditions) and applies
 *    per-stream DRAM-lean demotion;
 *  - PressureDirector demotes cold provider state above the
 *    high-water threshold, down to the low-water target, within the
 *    per-tick budget, in deterministic provider order;
 *  - end to end, an overloaded engine with demotion enabled shows a
 *    deterministic demotion count, a strictly lower HBM high-water
 *    than the identical run without demotion, and identical pipeline
 *    output (demotion moves state, never corrupts it).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/units.h"
#include "ingest/generator.h"
#include "ingest/source.h"
#include "mem/placement_policy.h"
#include "mem/pressure_director.h"
#include "pipeline/aggregations.h"
#include "pipeline/egress.h"
#include "pipeline/extract.h"
#include "pipeline/windowing.h"
#include "runtime/engine.h"

namespace sbhbm::runtime {
namespace {

using ingest::KvGen;
using mem::PlacementClass;
using mem::Tier;

// -------------------------------------------------------------------
// KnobPlacementPolicy
// -------------------------------------------------------------------

/** The pre-control-plane Engine::placeKpa logic, verbatim. */
kpa::Placement
legacyPlace(sim::MemoryMode mode, bool use_knob, BalanceKnob &knob,
            Rng &rng, mem::HybridMemory &hm, ImpactTag tag,
            uint64_t bytes_hint)
{
    if (mode != sim::MemoryMode::kFlat)
        return kpa::Placement{Tier::kDram, false};
    if (tag == ImpactTag::kUrgent)
        return kpa::Placement{Tier::kHbm, true};
    const bool want_hbm = use_knob ? knob.preferHbm(tag, rng) : true;
    if (want_hbm && hm.hbmHasRoom(bytes_hint))
        return kpa::Placement{Tier::kHbm, false};
    return kpa::Placement{Tier::kDram, false};
}

TEST(PlacementPolicy, DefaultPolicyMatchesLegacyLogicBitForBit)
{
    // Drive the knob into mixed territory so both k_low and k_high
    // coin flips really happen, then compare every decision (and
    // hence every RNG draw) against the legacy expression evaluated
    // with an identically-seeded RNG.
    auto mc = sim::MachineConfig::knl();
    mc.hbm.capacity_bytes = 8_MiB;
    mem::HybridMemory hm(mc, sim::MemoryMode::kFlat);

    BalanceKnob knob_a, knob_b;
    Rng rng_a(42), rng_b(42), tags(7);
    mem::KnobPlacementPolicy policy(hm, knob_a, rng_a,
                                    /*use_knob=*/true);

    for (int step = 0; step < 2000; ++step) {
        if (step % 100 == 0) {
            knob_a.update(0.9, 0.2, true); // shed toward DRAM
            knob_b.update(0.9, 0.2, true);
        }
        const auto tag = static_cast<ImpactTag>(tags.nextBounded(3));
        const uint64_t bytes = 4096u << tags.nextBounded(8);
        const auto got = policy.place(tag, bytes, /*stream=*/0);
        const kpa::Placement want =
            legacyPlace(sim::MemoryMode::kFlat, true, knob_b, rng_b,
                        hm, tag, bytes);
        ASSERT_EQ(got.tier, want.tier) << "step " << step;
        ASSERT_EQ(got.urgent, want.urgent) << "step " << step;
    }
}

TEST(PlacementPolicy, DramLeanStreamSkipsHbmExceptUrgent)
{
    auto mc = sim::MachineConfig::knl();
    mem::HybridMemory hm(mc, sim::MemoryMode::kFlat);
    BalanceKnob knob; // k_low = k_high = 1: always wants HBM
    Rng rng(1);
    mem::KnobPlacementPolicy policy(hm, knob, rng, true);

    EXPECT_EQ(policy.place(ImpactTag::kLow, 4096, 5).tier, Tier::kHbm);
    policy.setStreamClass(5, PlacementClass::kDramLean);
    EXPECT_EQ(policy.streamClass(5), PlacementClass::kDramLean);
    EXPECT_EQ(policy.place(ImpactTag::kLow, 4096, 5).tier, Tier::kDram);
    EXPECT_EQ(policy.place(ImpactTag::kHigh, 4096, 5).tier, Tier::kDram);
    // The critical path keeps its reserve even while demoted.
    const auto urgent = policy.place(ImpactTag::kUrgent, 4096, 5);
    EXPECT_EQ(urgent.tier, Tier::kHbm);
    EXPECT_TRUE(urgent.urgent);
    // Other streams are unaffected.
    EXPECT_EQ(policy.place(ImpactTag::kLow, 4096, 6).tier, Tier::kHbm);
    // Recovery restores knob-driven placement.
    policy.setStreamClass(5, PlacementClass::kNormal);
    EXPECT_EQ(policy.place(ImpactTag::kLow, 4096, 5).tier, Tier::kHbm);
}

TEST(PlacementPolicy, EngineForwardsStreamClass)
{
    EngineConfig cfg;
    Engine eng(cfg);
    eng.setStreamPlacementClass(3, PlacementClass::kDramLean);
    EXPECT_EQ(eng.placeKpa(ImpactTag::kLow, 4096, 3).tier, Tier::kDram);
    EXPECT_EQ(eng.placeKpa(ImpactTag::kLow, 4096, 4).tier, Tier::kHbm);
    EXPECT_EQ(eng.placeKpa(ImpactTag::kLow, 4096, 3).stream, 3u);
}

// -------------------------------------------------------------------
// PressureDirector
// -------------------------------------------------------------------

/** Provider with a fixed pile of demotable gauge bytes. */
class FakeProvider : public mem::ColdStateProvider
{
  public:
    FakeProvider(mem::HybridMemory &hm, uint32_t stream,
                 uint32_t blocks, uint64_t block_bytes)
        : hm_(hm), stream_(stream)
    {
        for (uint32_t i = 0; i < blocks; ++i)
            blocks_.push_back(
                hm.alloc(block_bytes, Tier::kHbm, false, stream));
    }

    ~FakeProvider() override
    {
        for (auto &b : blocks_)
            hm_.free(b);
    }

    uint32_t providerStream() const override { return stream_; }

    mem::DemoteResult
    demoteColdState(uint64_t want, sim::CostLog &log) override
    {
        mem::DemoteResult r;
        for (auto &b : blocks_) {
            if (r.charged_bytes >= want)
                break;
            if (b.tier != Tier::kHbm)
                continue;
            const uint64_t charged = b.charged_bytes;
            if (!hm_.migrate(b, Tier::kDram))
                continue;
            log.seq(Tier::kHbm, b.bytes);
            log.seq(Tier::kDram, b.bytes);
            r.charged_bytes += charged;
            ++r.kpas;
        }
        return r;
    }

  private:
    mem::HybridMemory &hm_;
    uint32_t stream_;
    std::vector<mem::Block> blocks_;
};

mem::PressureConfig
pressureOn()
{
    mem::PressureConfig p;
    p.enabled = true;
    p.high_water = 0.80;
    p.low_water = 0.50;
    return p;
}

TEST(PressureDirector, DisabledTickIsANoOp)
{
    auto mc = sim::MachineConfig::knl();
    mc.hbm.capacity_bytes = 1_MiB;
    mem::HybridMemory hm(mc, sim::MemoryMode::kFlat);
    mem::PressureDirector dir(hm, mem::PressureConfig{}); // disabled
    // 15 x 64 KiB: all that fits under the 5% urgent reserve (93.75%).
    FakeProvider prov(hm, 1, 15, 60_KiB);
    dir.registerProvider(&prov);
    EXPECT_TRUE(dir.tick().empty());
    EXPECT_EQ(dir.demotedKpas(), 0u);
    EXPECT_EQ(hm.gauge(Tier::kHbm).used(), 15u * 64_KiB);
    dir.unregisterProvider(&prov);
}

TEST(PressureDirector, DemotesDownToLowWaterTarget)
{
    auto mc = sim::MachineConfig::knl();
    mc.hbm.capacity_bytes = 1_MiB;
    mem::HybridMemory hm(mc, sim::MemoryMode::kFlat);
    mem::PressureDirector dir(hm, pressureOn());
    // 15 x 64 KiB = 960 KiB: 93.75% used, above the 80% high water.
    FakeProvider prov(hm, 4, 15, 60_KiB);
    dir.registerProvider(&prov);

    sim::CostLog log = dir.tick();
    EXPECT_FALSE(log.empty()) << "migration traffic must be charged";
    // Demotion stops at the first block that reaches the 50% target:
    // 960 KiB - 512 KiB = 448 KiB to free -> ceil(448/64) = 7 blocks.
    EXPECT_EQ(dir.demotedKpas(), 7u);
    EXPECT_EQ(dir.demotedBytes(), 7u * 64_KiB);
    EXPECT_EQ(hm.gauge(Tier::kHbm).used(), 8u * 64_KiB);
    EXPECT_EQ(dir.pressureTicks(), 1u);
    // Per-stream attribution.
    EXPECT_EQ(dir.demotedKpas(4), 7u);
    EXPECT_EQ(dir.demotedBytes(4), 7u * 64_KiB);

    // Now below high water: the next tick does nothing.
    EXPECT_TRUE(dir.tick().empty());
    EXPECT_EQ(dir.demotedKpas(), 7u);
    dir.unregisterProvider(&prov);
}

TEST(PressureDirector, RespectsPerTickBudgetAndProviderOrder)
{
    auto mc = sim::MachineConfig::knl();
    mc.hbm.capacity_bytes = 1_MiB;
    mem::HybridMemory hm(mc, sim::MemoryMode::kFlat);
    auto cfg = pressureOn();
    cfg.max_bytes_per_tick = 128_KiB;
    mem::PressureDirector dir(hm, cfg);
    // 15 blocks total (93.75% used): one in the first-registered
    // provider, the rest in the second.
    FakeProvider first(hm, 1, 1, 60_KiB);
    FakeProvider second(hm, 2, 14, 60_KiB);
    dir.registerProvider(&first);
    dir.registerProvider(&second);

    dir.tick();
    // Budget caps the sweep at 2 x 64 KiB: the first provider's only
    // block, then one from the second — registration order.
    EXPECT_EQ(dir.demotedKpas(), 2u);
    EXPECT_EQ(dir.demotedKpas(1), 1u);
    EXPECT_EQ(dir.demotedKpas(2), 1u);
    // 13 x 64 KiB = 81.25%: still above high water, one more round.
    dir.tick();
    EXPECT_EQ(dir.demotedKpas(), 4u);
    EXPECT_EQ(dir.demotedKpas(2), 3u);
    // 11 x 64 KiB = 68.75%: below high water — the director leaves
    // the remaining cold state alone (demote only under pressure).
    EXPECT_TRUE(dir.tick().empty());
    EXPECT_EQ(dir.demotedKpas(), 4u);
    dir.unregisterProvider(&first);
    dir.unregisterProvider(&second);
}

// -------------------------------------------------------------------
// End to end: overload -> demotion -> lower HBM high-water,
// identical output.
// -------------------------------------------------------------------

struct OverloadResult
{
    uint64_t demoted_kpas = 0;
    uint64_t demoted_bytes = 0;
    uint64_t hbm_high_water = 0; //!< monitor-sampled peak usage
    uint64_t hbm_used_at_phase_end = 0;
    uint64_t output_records = 0;
    uint64_t windows = 0;
};

/**
 * SumPerKey under HBM capacity overload: a scaled-down HBM tier and
 * delayed watermarks (several windows of sorted runs held open at
 * once) pin the gauge near capacity.
 */
OverloadResult
runOverload(bool demotion)
{
    EngineConfig ecfg;
    ecfg.machine.hbm.capacity_bytes = 6_MiB;
    ecfg.cores = 8;
    ecfg.max_inflight_bundles = 256;
    ecfg.pressure.enabled = demotion;
    ecfg.pressure.low_water = 0.50;
    Engine eng(ecfg);

    pipeline::Pipeline pipe(eng, columnar::WindowSpec{10 * kNsPerMs});
    auto &extract = pipe.add<pipeline::ExtractOp>(
        pipe, "extract", KvGen::kKeyCol);
    auto &window =
        pipe.add<pipeline::WindowOp>(pipe, "window", KvGen::kTsCol);
    auto &agg = pipe.add<pipeline::KeyedAggOp>(
        pipe, "sum", KvGen::kKeyCol,
        pipeline::aggs::sumPerKey(KvGen::kValueCol));
    auto &egress = pipe.add<pipeline::EgressOp>(pipe);
    extract.connectTo(&window);
    window.connectTo(&agg);
    agg.connectTo(&egress);

    KvGen gen(11, /*key_range=*/500, /*value_range=*/1000);
    ingest::SourceConfig scfg;
    scfg.bundle_records = 10'000;
    scfg.total_records = 800'000;
    // 2 M rec/s -> 5 ms per bundle, 2 bundles per 10 ms window; a
    // watermark every 40 bundles holds ~20 windows of sorted runs
    // open at once (~6.4 MB of KPAs against 6 MiB of HBM), crossing
    // the 80% high-water threshold around t = 150 ms.
    scfg.offered_rate = 2e6;
    scfg.bundles_per_watermark = 40;
    ingest::Source src(eng, pipe, gen, &extract, scfg);
    src.start();
    eng.monitor().start();

    // Snapshot residency at the end of the first accumulation phase,
    // just before the watermark (t ~ 200 ms) closes every open
    // window.
    eng.machine().runUntil(190 * kNsPerMs);
    OverloadResult r;
    r.hbm_used_at_phase_end = eng.memory().gauge(Tier::kHbm).used();

    eng.machine().run();
    // The "HBM high-water" of the run is the monitor's sampled peak —
    // the series Fig 10 plots. (The gauge's absolute highWater() is
    // dominated by a sub-tick allocation transient at the moment the
    // 80% threshold is first crossed, which is identical in both runs
    // by construction: the runs cannot diverge before the first
    // demotion.)
    r.hbm_high_water = static_cast<uint64_t>(
        eng.monitor().hbmUsedStat().max());
    r.demoted_kpas = eng.director().demotedKpas();
    r.demoted_bytes = eng.director().demotedBytes();
    r.output_records = egress.outputRecords();
    r.windows = pipe.windowsExternalized();
    return r;
}

TEST(PressureDemotion, OverloadDemotesAndLowersHbmHighWater)
{
    const OverloadResult off = runOverload(false);
    const OverloadResult on = runOverload(true);

    // The run is genuinely overloaded: without demotion, HBM high
    // water is pinned near the scaled capacity.
    EXPECT_GT(off.hbm_high_water, (6_MiB * 3) / 4);

    // Demotion engaged, and it relieved the peak: strictly lower
    // sampled high-water than the identical run without demotion,
    // and far lower steady-state residency at the end of the
    // accumulation phase.
    EXPECT_GT(on.demoted_kpas, 0u);
    EXPECT_GT(on.demoted_bytes, 0u);
    EXPECT_LT(on.hbm_high_water, off.hbm_high_water);
    EXPECT_LT(on.hbm_used_at_phase_end,
              (off.hbm_used_at_phase_end * 3) / 4);

    // Demotion moves state without corrupting it: the victim
    // pipeline drains fully and externalizes identical output.
    EXPECT_EQ(on.output_records, off.output_records);
    EXPECT_EQ(on.windows, off.windows);
    EXPECT_GT(on.output_records, 0u);

    // Pinned determinism: the same overload reproduces the same
    // demotion counts and the same high-water, bit for bit.
    const OverloadResult again = runOverload(true);
    EXPECT_EQ(again.demoted_kpas, on.demoted_kpas);
    EXPECT_EQ(again.demoted_bytes, on.demoted_bytes);
    EXPECT_EQ(again.hbm_high_water, on.hbm_high_water);
    EXPECT_EQ(again.hbm_used_at_phase_end, on.hbm_used_at_phase_end);
    EXPECT_EQ(again.output_records, on.output_records);
}

} // namespace
} // namespace sbhbm::runtime
