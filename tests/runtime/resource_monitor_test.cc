#include "runtime/resource_monitor.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"
#include "mem/hybrid_memory.h"
#include "runtime/balance_knob.h"
#include "runtime/engine.h"
#include "sim/machine.h"

namespace sbhbm::runtime {
namespace {

sim::MachineConfig
machineConfig()
{
    auto cfg = sim::MachineConfig::knl();
    cfg.cores = 4;
    return cfg;
}

struct MonitorRig
{
    sim::Machine machine{machineConfig()};
    mem::HybridMemory hm{machineConfig(), sim::MemoryMode::kFlat};
    BalanceKnob knob;
    bool headroom_ok = true;
    ResourceMonitor monitor{machine, hm, knob,
                            [this] { return headroom_ok; },
                            10 * kNsPerMs};
};

TEST(ResourceMonitor, SamplesAtTheConfiguredPeriod)
{
    MonitorRig rig;
    rig.monitor.start();
    rig.machine.events().runUntil(105 * kNsPerMs);
    // Ticks at 10, 20, ..., 100 ms.
    ASSERT_EQ(rig.monitor.samples().size(), 10u);
    for (size_t i = 0; i < rig.monitor.samples().size(); ++i) {
        EXPECT_EQ(rig.monitor.samples()[i].t,
                  SimTime{(i + 1) * 10 * kNsPerMs});
    }
}

TEST(ResourceMonitor, StartIsIdempotentAndStopStopsSampling)
{
    MonitorRig rig;
    rig.monitor.start();
    rig.monitor.start(); // must not double-arm the tick
    rig.machine.events().runUntil(35 * kNsPerMs);
    EXPECT_EQ(rig.monitor.samples().size(), 3u);

    rig.monitor.stop();
    rig.machine.events().runUntil(200 * kNsPerMs);
    EXPECT_EQ(rig.monitor.samples().size(), 3u);
    EXPECT_FALSE(rig.monitor.running());
}

TEST(ResourceMonitor, BandwidthComputedFromCumulativeTierBytes)
{
    MonitorRig rig;
    rig.monitor.start();

    // One 80 MB DRAM stream (a single flow, so it drains at the
    // per-flow cap, spilling across sample intervals).
    const double bytes = 80 * 1000 * 1000;
    sim::CostLog cost;
    cost.seq(sim::Tier::kDram, static_cast<uint64_t>(bytes));
    bool done = false;
    rig.machine.execute(std::move(cost), [&] { done = true; });
    rig.machine.events().runUntil(55 * kNsPerMs);
    ASSERT_TRUE(done);

    ASSERT_GE(rig.monitor.samples().size(), 5u);
    const auto &samples = rig.monitor.samples();
    // The first interval runs flat out at the per-flow link cap...
    EXPECT_NEAR(samples[0].dram_bw,
                rig.machine.flowCap(sim::Tier::kDram,
                                    sim::AccessPattern::kSequential),
                1e6);
    EXPECT_DOUBLE_EQ(samples[0].hbm_bw, 0.0);
    // ...and the per-interval averages integrate back to the total.
    double integrated = 0;
    for (const auto &s : samples)
        integrated += s.dram_bw * simToSeconds(10 * kNsPerMs);
    EXPECT_NEAR(integrated, bytes, 1.0);
    // The tail intervals (transfer long done) saw no traffic.
    EXPECT_DOUBLE_EQ(samples.back().dram_bw, 0.0);
    EXPECT_DOUBLE_EQ(rig.monitor.dramBwStat().max(), samples[0].dram_bw);
}

TEST(ResourceMonitor, TracksHbmCapacityAndDrivesKnob)
{
    MonitorRig rig;
    // Fill HBM past the knob's hbm_high threshold (80%).
    const uint64_t cap = machineConfig().hbm.capacity_bytes;
    auto block = rig.hm.alloc(static_cast<uint64_t>(0.9 * cap),
                              mem::Tier::kHbm);
    rig.monitor.start();
    rig.machine.events().runUntil(15 * kNsPerMs);

    ASSERT_EQ(rig.monitor.samples().size(), 1u);
    const auto &s = rig.monitor.samples()[0];
    EXPECT_GE(s.hbm_used_bytes, static_cast<uint64_t>(0.9 * cap));
    // One refresh above hbm_high moves k_low down by one delta step.
    EXPECT_NEAR(s.k_low, 0.95, 1e-9);
    EXPECT_DOUBLE_EQ(s.k_high, 1.0);
    rig.hm.free(block);
}

// -------------------------------------------------------------------
// Engine back-pressure hysteresis edges.
// -------------------------------------------------------------------

EngineConfig
engineConfig(uint32_t max_inflight, unsigned cores = 2)
{
    EngineConfig cfg;
    cfg.cores = cores;
    cfg.max_inflight_bundles = max_inflight;
    return cfg;
}

TEST(EngineBackpressure, HardThresholdCrossedExactlyAtTheLimit)
{
    Engine e(engineConfig(4));
    for (int i = 0; i < 3; ++i)
        e.noteBundleIn();
    EXPECT_FALSE(e.backpressured()) << "below the limit";
    e.noteBundleIn(); // 4 == max_inflight_bundles
    EXPECT_TRUE(e.backpressured()) << "at the limit";
}

TEST(EngineBackpressure, SoftEngagesStrictlyBeforeHard)
{
    // cores=2 -> soft threshold = min(30, max(10, 10)) = 10.
    Engine e(engineConfig(30));
    EXPECT_EQ(e.softThreshold(), 10u);
    for (int i = 0; i < 9; ++i)
        e.noteBundleIn();
    EXPECT_FALSE(e.softBackpressured());
    e.noteBundleIn(); // 10: soft engages, hard does not
    EXPECT_TRUE(e.softBackpressured());
    EXPECT_FALSE(e.backpressured());
    for (int i = 0; i < 20; ++i)
        e.noteBundleIn(); // 30: hard engages
    EXPECT_TRUE(e.backpressured());
    EXPECT_TRUE(e.softBackpressured()) << "hard implies soft";
}

TEST(EngineBackpressure, SoftCapsAtTheHardLimit)
{
    // A tiny budget: soft = min(4, max(10, 1)) = 4 == hard, so the
    // two thresholds coincide instead of soft landing above hard.
    Engine e(engineConfig(4));
    EXPECT_EQ(e.softThreshold(), 4u);
    for (int i = 0; i < 4; ++i)
        e.noteBundleIn();
    EXPECT_TRUE(e.softBackpressured());
    EXPECT_TRUE(e.backpressured());
}

TEST(EngineBackpressure, RecoversAfterDrain)
{
    Engine e(engineConfig(4));
    for (int i = 0; i < 4; ++i)
        e.noteBundleIn();
    EXPECT_TRUE(e.backpressured());
    e.noteBundleOut(); // 3: hard releases immediately below the limit
    EXPECT_FALSE(e.backpressured());
    while (e.inflightBundles() > 0)
        e.noteBundleOut();
    EXPECT_FALSE(e.softBackpressured());
    EXPECT_EQ(e.bundlesReleased(), 4u);
}

TEST(EngineBackpressure, PerStreamBudgetThrottlesOnlyThatStream)
{
    Engine e(engineConfig(100));
    e.setStreamBudget(7, 3);
    for (int i = 0; i < 3; ++i)
        e.noteBundleIn(7);
    EXPECT_TRUE(e.backpressured(7)) << "stream cap crossed exactly";
    EXPECT_FALSE(e.backpressured(8)) << "other streams unaffected";
    EXPECT_FALSE(e.backpressured()) << "global budget far away";
    EXPECT_EQ(e.inflightBundles(7), 3u);
    EXPECT_EQ(e.inflightBundles(8), 0u);
    EXPECT_EQ(e.inflightBundles(), 3u) << "global count includes all";

    e.noteBundleOut(7);
    EXPECT_FALSE(e.backpressured(7)) << "recovers below the cap";
}

TEST(EngineBackpressure, PerStreamSoftAtTwoThirdsOfCap)
{
    Engine e(engineConfig(100));
    e.setStreamBudget(7, 9); // soft at 6
    for (int i = 0; i < 5; ++i)
        e.noteBundleIn(7);
    EXPECT_FALSE(e.softBackpressured(7));
    e.noteBundleIn(7); // 6 = 2*9/3
    EXPECT_TRUE(e.softBackpressured(7));
    EXPECT_FALSE(e.backpressured(7)) << "soft strictly before hard";
}

TEST(EngineBackpressure, GlobalPressureBackpressuresEveryStream)
{
    Engine e(engineConfig(4));
    for (int i = 0; i < 4; ++i)
        e.noteBundleIn(1);
    EXPECT_TRUE(e.backpressured(2))
        << "the machine-wide budget binds streams with room of "
           "their own";
}

TEST(EngineBackpressure, StreamZeroWithoutBudgetMatchesGlobal)
{
    Engine e(engineConfig(4));
    for (int i = 0; i < 4; ++i)
        e.noteBundleIn();
    EXPECT_EQ(e.backpressured(0), e.backpressured());
    EXPECT_EQ(e.softBackpressured(0), e.softBackpressured());
}

} // namespace
} // namespace sbhbm::runtime
