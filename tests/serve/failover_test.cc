/**
 * @file
 * Fault tolerance end to end:
 *  - FaultPlanTest: the seeded chaos schedule is a pure function of
 *    its seed and never targets the control-plane shard;
 *  - Failover: an injected shard crash fails the resident sessions
 *    over to survivors — checkpoint restore or scratch-restart plus
 *    watermark-aligned replay — and the recovered fleet's per-window
 *    output (records and content checksums) is bit-identical to a
 *    fault-free run, with records conserved across the replay and
 *    the same plan reproducing the same recovery trace twice;
 *  - GracefulExhaustion: injected allocation failure during window
 *    build sheds work (typed, counted) instead of aborting;
 *  - ChaosSoak: a seeded mixed-fault schedule over the 64-session
 *    load-driver fleet drains cleanly and reproduces bit for bit.
 */

#include "serve/server.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"
#include "serve/load_driver.h"

namespace sbhbm::serve {
namespace {

/** A fault-tolerant fleet: checkpointing on, recovery on. */
ServeConfig
ftConfig(uint32_t shards, SimTime checkpoint_period = 3 * kNsPerMs)
{
    ServeConfig cfg;
    cfg.engine.cores = 8;
    cfg.engine.max_inflight_bundles = 256;
    cfg.window_ns = 2 * kNsPerMs;
    cfg.shards = shards;
    cfg.fault.enabled = true;
    cfg.fault.checkpoint_period = checkpoint_period;
    return cfg;
}

/** A recoverable session: logical event time, steady offered rate. */
TenantSpec
ftTenant(runtime::StreamId id, uint64_t records = 100'000)
{
    TenantSpec t;
    t.id = id;
    t.name = "ft" + std::to_string(id);
    t.query = queries::QueryId::kSumPerKey;
    t.total_records = records;
    t.bundle_records = 1'000;
    t.offered_rate = 5e6; // 100k records = 20 ms of stream
    t.logical_time = true;
    t.key_range = 2'000;
    t.hbm_reserve_bytes = 8_MiB;
    t.max_inflight_bundles = 32; // a 2 ms window spans 10 bundles
    return t;
}

/** Run a two-tenant fleet (t1 -> shard 0, t2 -> shard 1) under
 *  @p plan and hand back the server for inspection. */
std::unique_ptr<Server>
runPair(uint32_t shards, sim::FaultPlan plan,
        SimTime checkpoint_period = 3 * kNsPerMs)
{
    auto server = std::make_unique<Server>(
        [&] {
            ServeConfig cfg = ftConfig(shards, checkpoint_period);
            cfg.fault.plan = std::move(plan);
            return cfg;
        }());
    server->submit(ftTenant(1));
    server->submit(ftTenant(2));
    server->run();
    return server;
}

/** Ingest-side conservation across crashes and shedding: everything
 *  the stream offered was consumed exactly once, plus the replays. */
void
expectRecordsConserved(const TenantReport &r)
{
    EXPECT_EQ(r.records + r.records_shed,
              r.spec.total_records + r.records_replayed)
        << "tenant " << r.spec.id;
}

// -------------------------------------------------------------------
// FaultPlanTest: the schedule itself
// -------------------------------------------------------------------

TEST(FaultPlanTest, ScatterIsAPureFunctionOfTheSeed)
{
    const auto a = sim::FaultPlan::scatter(7, kNsPerSec, 4, 16, 32);
    const auto b = sim::FaultPlan::scatter(7, kNsPerSec, 4, 16, 32);
    ASSERT_EQ(a.events.size(), 32u);
    for (size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].at, b.events[i].at);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].shard, b.events[i].shard);
        EXPECT_EQ(a.events[i].tenant, b.events[i].tenant);
        EXPECT_EQ(a.events[i].arg, b.events[i].arg);
        EXPECT_EQ(a.events[i].arg2, b.events[i].arg2);
    }
    // A different seed is a different plan.
    const auto c = sim::FaultPlan::scatter(8, kNsPerSec, 4, 16, 32);
    bool differs = false;
    for (size_t i = 0; i < c.events.size(); ++i)
        differs = differs || c.events[i].at != a.events[i].at;
    EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, ScatterNeverCrashesTheControlPlaneShard)
{
    const auto plan = sim::FaultPlan::scatter(3, kNsPerSec, 4, 8, 200);
    for (const auto &e : plan.events) {
        if (e.kind == sim::FaultKind::kShardCrash) {
            EXPECT_GE(e.shard, 1u);
            EXPECT_LT(e.shard, 4u);
        }
    }
}

// -------------------------------------------------------------------
// Failover: crash -> recover -> bit-identical output
// -------------------------------------------------------------------

TEST(Failover, CheckpointRecoveryIsBitIdenticalToFaultFreeRun)
{
    // Baseline: same fleet, same checkpoint cadence, no faults.
    auto base = runPair(3, sim::FaultPlan{});
    // Fault run: shard 1 (hosting tenant 2) dies mid-stream, after
    // several checkpoints have been cut.
    auto fault = runPair(3, sim::FaultPlan{}.crash(10 * kNsPerMs, 1));

    EXPECT_TRUE(fault->shardDead(1));
    ASSERT_EQ(base->reports().size(), 2u);
    ASSERT_EQ(fault->reports().size(), 2u);

    const TenantReport &survivor = fault->reports()[0];
    const TenantReport &recovered = fault->reports()[1];
    EXPECT_EQ(survivor.crashes, 0u);
    EXPECT_EQ(recovered.crashes, 1u);
    EXPECT_EQ(recovered.recoveries, 1u);
    EXPECT_FALSE(recovered.lost);
    EXPECT_GT(recovered.downtime_ns, 0u);
    EXPECT_GT(recovered.records_replayed, 0u);
    EXPECT_GT(recovered.checkpoints, 0u);
    // The checkpoint bounded the replay: far fewer records than a
    // scratch restart (which would replay the whole prefix).
    EXPECT_LT(recovered.records_replayed, recovered.spec.total_records);
    EXPECT_NE(recovered.shard, 1u);
    expectRecordsConserved(survivor);
    expectRecordsConserved(recovered);

    // The pinned acceptance check: per-window delivered output —
    // record counts and order-insensitive content checksums — is
    // bit-identical to the fault-free run, for both sessions.
    for (size_t i = 0; i < 2; ++i) {
        const TenantReport &b = base->reports()[i];
        const TenantReport &f = fault->reports()[i];
        EXPECT_EQ(f.output_records, b.output_records)
            << "tenant " << b.spec.id;
        EXPECT_EQ(f.window_records, b.window_records)
            << "tenant " << b.spec.id;
        EXPECT_EQ(f.window_checksums, b.window_checksums)
            << "tenant " << b.spec.id;
    }
    // The untouched session's cost totals match the baseline too.
    EXPECT_EQ(survivor.tasks, base->reports()[0].tasks);
    EXPECT_EQ(survivor.cpu_ns, base->reports()[0].cpu_ns);
    EXPECT_EQ(survivor.hbm_bytes, base->reports()[0].hbm_bytes);

    // The recovery restored from a checkpoint, not from scratch.
    bool checkpoint_restore = false;
    for (const std::string &line : fault->recoveryTrace())
        checkpoint_restore = checkpoint_restore
                             || line.find("mode=checkpoint")
                                    != std::string::npos;
    EXPECT_TRUE(checkpoint_restore);
}

TEST(Failover, ScratchRestartRecoversWithoutACheckpoint)
{
    auto base = runPair(3, sim::FaultPlan{}, /*checkpoint_period=*/0);
    auto fault = runPair(3, sim::FaultPlan{}.crash(10 * kNsPerMs, 1),
                         /*checkpoint_period=*/0);

    const TenantReport &recovered = fault->reports()[1];
    EXPECT_EQ(recovered.crashes, 1u);
    EXPECT_EQ(recovered.recoveries, 1u);
    EXPECT_FALSE(recovered.lost);
    EXPECT_EQ(recovered.checkpoints, 0u);
    // No checkpoint: the whole consumed prefix replays.
    EXPECT_GT(recovered.records_replayed, 0u);
    expectRecordsConserved(recovered);
    EXPECT_EQ(fault->reports()[0].window_checksums,
              base->reports()[0].window_checksums);
    EXPECT_EQ(recovered.window_records, base->reports()[1].window_records);
    EXPECT_EQ(recovered.window_checksums,
              base->reports()[1].window_checksums);

    bool scratch = false;
    for (const std::string &line : fault->recoveryTrace())
        scratch = scratch
                  || line.find("mode=scratch") != std::string::npos;
    EXPECT_TRUE(scratch);
}

TEST(Failover, SameFaultPlanReproducesTheSameRecoveryTrace)
{
    const auto plan = sim::FaultPlan{}
                          .crash(10 * kNsPerMs, 1)
                          .stallIngest(4 * kNsPerMs, 1, kNsPerMs)
                          .dropIngest(6 * kNsPerMs, 1, 2);
    auto a = runPair(3, plan);
    auto b = runPair(3, plan);

    ASSERT_FALSE(a->recoveryTrace().empty());
    EXPECT_EQ(a->recoveryTrace(), b->recoveryTrace());
    for (size_t i = 0; i < a->reports().size(); ++i) {
        const TenantReport &ra = a->reports()[i];
        const TenantReport &rb = b->reports()[i];
        EXPECT_EQ(ra.records, rb.records);
        EXPECT_EQ(ra.output_records, rb.output_records);
        EXPECT_EQ(ra.records_replayed, rb.records_replayed);
        EXPECT_EQ(ra.records_shed, rb.records_shed);
        EXPECT_EQ(ra.cpu_ns, rb.cpu_ns);
        EXPECT_EQ(ra.window_checksums, rb.window_checksums);
        EXPECT_EQ(ra.downtime_ns, rb.downtime_ns);
    }
}

TEST(Failover, DoubleCrashDuringRecoveryStillConvergesBitIdentically)
{
    auto base = runPair(3, sim::FaultPlan{});
    // Shard 1 dies; tenant 2 recovers onto the empty shard 2, which
    // then dies too; the second recovery lands on shard 0.
    auto fault = runPair(3, sim::FaultPlan{}
                                .crash(8 * kNsPerMs, 1)
                                .crash(12 * kNsPerMs, 2));

    EXPECT_TRUE(fault->shardDead(1));
    EXPECT_TRUE(fault->shardDead(2));
    const TenantReport &recovered = fault->reports()[1];
    EXPECT_EQ(recovered.crashes, 2u);
    EXPECT_EQ(recovered.recoveries, 2u);
    EXPECT_FALSE(recovered.lost);
    EXPECT_EQ(recovered.shard, 0u);
    expectRecordsConserved(recovered);
    EXPECT_EQ(recovered.output_records,
              base->reports()[1].output_records);
    EXPECT_EQ(recovered.window_records,
              base->reports()[1].window_records);
    EXPECT_EQ(recovered.window_checksums,
              base->reports()[1].window_checksums);
}

TEST(Failover, PhysicalTimeSessionIsLostNotWedged)
{
    // Without logical event time a replay cannot reproduce the
    // original timestamps: the session is declared lost, its
    // reservation released, and the fleet still drains cleanly.
    ServeConfig cfg = ftConfig(3);
    cfg.fault.plan.crash(10 * kNsPerMs, 1);
    Server server(cfg);
    server.submit(ftTenant(1));
    TenantSpec legacy = ftTenant(2);
    legacy.logical_time = false;
    server.submit(legacy);
    server.run();

    const TenantReport &lost = server.reports()[1];
    EXPECT_EQ(lost.crashes, 1u);
    EXPECT_EQ(lost.recoveries, 0u);
    EXPECT_TRUE(lost.lost);
    EXPECT_LT(lost.records, lost.spec.total_records);
    EXPECT_EQ(server.reports()[0].crashes, 0u);
    bool traced = false;
    for (const std::string &line : server.recoveryTrace())
        traced = traced
                 || line.find("unrecoverable") != std::string::npos;
    EXPECT_TRUE(traced);
}

// -------------------------------------------------------------------
// GracefulExhaustion: injected OOM sheds instead of aborting
// -------------------------------------------------------------------

TEST(GracefulExhaustion, OomDuringWindowBuildShedsInsteadOfAborting)
{
    ServeConfig cfg = ftConfig(1, /*checkpoint_period=*/0);
    // A burst of injected allocation failures lands mid-stream,
    // while window state is being built.
    cfg.fault.plan.failAllocs(5 * kNsPerMs, 0, 4)
        .failAllocs(9 * kNsPerMs, 0, 4);
    Server server(cfg);
    server.submit(ftTenant(1));
    server.run(); // must not abort

    EXPECT_EQ(server.engine(0).memory().injectedFailures(), 8u);
    const TenantReport &r = server.reports()[0];
    EXPECT_EQ(r.crashes, 0u);
    EXPECT_FALSE(r.lost);
    // Each failure surfaced as a typed shed — a dropped ingest
    // bundle or a shed task — never a fatal.
    EXPECT_GT(r.shed_tasks + r.records_shed, 0u);
    expectRecordsConserved(r);
}

// -------------------------------------------------------------------
// ChaosSoak: seeded mixed faults over the 64-session fleet
// -------------------------------------------------------------------

/** The part-3 contending fleet, shrunk and made recoverable. */
std::vector<TenantSpec>
chaosFleet()
{
    FleetConfig fleet;
    fleet.tenants = 64;
    fleet.seed = 42;
    fleet.hot_records = 20'000;
    fleet.cold_records = 5'000;
    fleet.bundle_records = 1'000;
    fleet.hot_rate = 5e6;
    fleet.cold_rate = 1e6;
    fleet.hot_hbm_reserve = 8_MiB;
    fleet.cold_hbm_reserve = 2_MiB;
    fleet.arrival_span = 0;
    fleet.max_inflight_bundles = 8;
    std::vector<TenantSpec> specs = makeFleet(fleet);
    for (TenantSpec &t : specs)
        t.logical_time = true; // every session recoverable
    return specs;
}

std::unique_ptr<Server>
runChaos(uint64_t seed)
{
    ServeConfig cfg;
    cfg.engine.cores = 4;
    cfg.engine.max_inflight_bundles = 512;
    cfg.window_ns = kNsPerMs;
    cfg.shards = 4;
    cfg.fault.enabled = true;
    cfg.fault.checkpoint_period = kNsPerMs;
    cfg.fault.admission_retries = 3;
    cfg.fault.plan = sim::FaultPlan::scatter(
        seed, /*horizon=*/3 * kNsPerMs, /*shards=*/4, /*tenants=*/64,
        /*count=*/10);
    // The storm always includes at least one shard kill: the scatter
    // mix alone may land its crashes on empty shards.
    cfg.fault.plan.crash(2 * kNsPerMs, 1);
    auto server = std::make_unique<Server>(cfg);
    server->submitFleet(chaosFleet());
    server->run();
    return server;
}

TEST(ChaosSoak, SeededFaultStormDrainsConservedAndReproducible)
{
    auto a = runChaos(0xC0FFEE);
    auto b = runChaos(0xC0FFEE);

    ASSERT_EQ(a->reports().size(), 64u);
    ASSERT_FALSE(a->recoveryTrace().empty());

    uint64_t crashes = 0, recoveries = 0;
    for (const TenantReport &r : a->reports()) {
        ASSERT_EQ(r.admission, Admission::kAdmitted)
            << "tenant " << r.spec.id;
        crashes += r.crashes;
        recoveries += r.recoveries;
        if (!r.lost)
            expectRecordsConserved(r);
    }
    // The storm actually hit something and the fleet came back.
    EXPECT_GT(crashes, 0u);
    EXPECT_GT(recoveries, 0u);

    // Same seed, same fleet => same recovery trace and same
    // per-tenant outcome, bit for bit.
    EXPECT_EQ(a->recoveryTrace(), b->recoveryTrace());
    for (size_t i = 0; i < a->reports().size(); ++i) {
        const TenantReport &ra = a->reports()[i];
        const TenantReport &rb = b->reports()[i];
        EXPECT_EQ(ra.records, rb.records) << "tenant " << ra.spec.id;
        EXPECT_EQ(ra.output_records, rb.output_records);
        EXPECT_EQ(ra.records_replayed, rb.records_replayed);
        EXPECT_EQ(ra.records_shed, rb.records_shed);
        EXPECT_EQ(ra.shed_tasks, rb.shed_tasks);
        EXPECT_EQ(ra.crashes, rb.crashes);
        EXPECT_EQ(ra.recoveries, rb.recoveries);
        EXPECT_EQ(ra.lost, rb.lost);
        EXPECT_EQ(ra.checkpoints, rb.checkpoints);
        EXPECT_EQ(ra.cpu_ns, rb.cpu_ns) << "tenant " << ra.spec.id;
        EXPECT_EQ(ra.window_checksums, rb.window_checksums);
    }
}

} // namespace
} // namespace sbhbm::serve
