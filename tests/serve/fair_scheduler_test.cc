#include "serve/fair_scheduler.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace sbhbm::serve {
namespace {

using Backlog = runtime::DispatchPolicy::StreamBacklog;
using Choice = runtime::DispatchPolicy::Choice;

/** A backlog entry with @p n tasks of @p tag, oldest seq @p seq. */
Backlog
entry(StreamId stream, ImpactTag tag, uint32_t n, uint64_t seq)
{
    Backlog b;
    b.stream = stream;
    b.head_seq[static_cast<int>(tag)] = seq;
    b.depth[static_cast<int>(tag)] = n;
    return b;
}

TEST(FairScheduler, UrgentPreemptsGlobally)
{
    FairScheduler s;
    s.setWeight(1, 100.0); // heavy high-backlog tenant...
    std::vector<Backlog> bl = {
        entry(1, ImpactTag::kHigh, 50, 10),
        entry(2, ImpactTag::kUrgent, 1, 99), // ...still loses to urgent
    };
    const Choice c = s.pick(bl);
    EXPECT_EQ(c.stream, 2u);
    EXPECT_EQ(c.tag, ImpactTag::kUrgent);
}

TEST(FairScheduler, UrgentFifoAcrossTenants)
{
    FairScheduler s;
    std::vector<Backlog> bl = {
        entry(1, ImpactTag::kUrgent, 1, 7),
        entry(2, ImpactTag::kUrgent, 1, 3), // enqueued earlier
    };
    EXPECT_EQ(s.pick(bl).stream, 2u);
}

TEST(FairScheduler, HighDispatchesBeforeLowWithinTenant)
{
    FairScheduler s;
    Backlog b = entry(1, ImpactTag::kLow, 4, 2);
    b.head_seq[static_cast<int>(ImpactTag::kHigh)] = 9;
    b.depth[static_cast<int>(ImpactTag::kHigh)] = 1;
    const Choice c = s.pick({b});
    EXPECT_EQ(c.stream, 1u);
    EXPECT_EQ(c.tag, ImpactTag::kHigh);
}

TEST(FairScheduler, ServiceProportionalToWeights)
{
    FairScheduler s;
    s.setWeight(1, 1.0);
    s.setWeight(2, 1.0);
    s.setWeight(3, 2.0);
    // All three permanently backlogged: service must converge to
    // 1 : 1 : 2.
    std::vector<Backlog> bl = {
        entry(1, ImpactTag::kHigh, 100, 1),
        entry(2, ImpactTag::kHigh, 100, 2),
        entry(3, ImpactTag::kHigh, 100, 3),
    };
    std::map<StreamId, int> count;
    for (int i = 0; i < 400; ++i)
        ++count[s.pick(bl).stream];
    EXPECT_EQ(count[1], 100);
    EXPECT_EQ(count[2], 100);
    EXPECT_EQ(count[3], 200);
}

TEST(FairScheduler, EqualWeightsInterleaveEvenly)
{
    FairScheduler s;
    std::vector<Backlog> bl = {
        entry(4, ImpactTag::kLow, 10, 1),
        entry(9, ImpactTag::kLow, 10, 2),
    };
    std::map<StreamId, int> count;
    for (int i = 0; i < 10; ++i)
        ++count[s.pick(bl).stream];
    EXPECT_EQ(count[4], 5);
    EXPECT_EQ(count[9], 5);
}

TEST(FairScheduler, IdleTenantForfeitsBankedCredit)
{
    FairScheduler s;
    s.setWeight(1, 1.0);
    s.setWeight(2, 1.0);
    // Tenant 1 served alone for a while...
    std::vector<Backlog> alone = {entry(1, ImpactTag::kHigh, 100, 1)};
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(s.pick(alone).stream, 1u);
    // ...then tenant 2 appears: service splits evenly from here on
    // (tenant 1 banked nothing while 2 was absent, and vice versa).
    std::vector<Backlog> both = {
        entry(1, ImpactTag::kHigh, 100, 1),
        entry(2, ImpactTag::kHigh, 100, 2),
    };
    std::map<StreamId, int> count;
    for (int i = 0; i < 100; ++i)
        ++count[s.pick(both).stream];
    EXPECT_EQ(count[1], 50);
    EXPECT_EQ(count[2], 50);
}

TEST(FairScheduler, ServedCountsTracked)
{
    FairScheduler s;
    std::vector<Backlog> bl = {
        entry(1, ImpactTag::kHigh, 10, 1),
        entry(2, ImpactTag::kUrgent, 10, 2),
    };
    for (int i = 0; i < 6; ++i)
        s.pick(bl);
    EXPECT_EQ(s.served(1), 0u) << "urgent backlog starves high";
    EXPECT_EQ(s.served(2), 6u);
}

TEST(JainIndex, BoundsAndExtremes)
{
    EXPECT_DOUBLE_EQ(jainIndex({}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({5.0, 5.0, 5.0, 5.0}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({1.0, 0.0, 0.0, 0.0}), 0.25);
    const double mixed = jainIndex({4.0, 1.0, 1.0});
    EXPECT_GT(mixed, 0.25);
    EXPECT_LT(mixed, 1.0);
}

} // namespace
} // namespace sbhbm::serve
