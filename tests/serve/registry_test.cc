#include "serve/tenant_registry.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace sbhbm::serve {
namespace {

TenantSpec
spec(runtime::StreamId id, uint64_t reserve)
{
    TenantSpec t;
    t.id = id;
    t.hbm_reserve_bytes = reserve;
    return t;
}

AdmissionConfig
budget(uint64_t bytes, uint32_t max_active = 64,
       uint32_t max_queued = 64)
{
    return AdmissionConfig{bytes, max_active, max_queued};
}

TEST(TenantRegistry, AdmitsWithinBudget)
{
    TenantRegistry reg(budget(100_MiB));
    EXPECT_EQ(reg.offer(spec(1, 40_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 60_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.active(), 2u);
    EXPECT_EQ(reg.gauge().used(), 100_MiB);
}

TEST(TenantRegistry, QueuesPastBudgetAndAdmitsOnRelease)
{
    TenantRegistry reg(budget(100_MiB));
    EXPECT_EQ(reg.offer(spec(1, 80_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 30_MiB)), Admission::kQueued);
    EXPECT_EQ(reg.queued(), 1u);

    auto admitted = reg.release(1);
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0].id, 2u);
    EXPECT_EQ(reg.active(), 1u);
    EXPECT_EQ(reg.queued(), 0u);
    EXPECT_EQ(reg.gauge().used(), 30_MiB);
}

TEST(TenantRegistry, ReleaseAdmitsInArrivalOrderWithHeadOfLine)
{
    TenantRegistry reg(budget(100_MiB));
    EXPECT_EQ(reg.offer(spec(1, 100_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 90_MiB)), Admission::kQueued);
    EXPECT_EQ(reg.offer(spec(3, 10_MiB)), Admission::kQueued);

    // Tenant 3 would fit beside 2's 90 MiB, but 2 arrived first and
    // admission preserves head-of-line order: both admit together
    // only when both fit.
    auto admitted = reg.release(1);
    ASSERT_EQ(admitted.size(), 2u);
    EXPECT_EQ(admitted[0].id, 2u);
    EXPECT_EQ(admitted[1].id, 3u);
}

TEST(TenantRegistry, HeadOfLineBlocksSmallerWaiters)
{
    TenantRegistry reg(budget(100_MiB));
    EXPECT_EQ(reg.offer(spec(1, 60_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 60_MiB)), Admission::kQueued);
    EXPECT_EQ(reg.offer(spec(3, 10_MiB)), Admission::kQueued);
    // Tenant 3 fits beside 1 right now, but 2 is ahead of it in the
    // queue and does not fit: a release that only frees room for 3
    // must admit nobody (no starving the big waiter).
    TenantRegistry reg2(budget(100_MiB));
    EXPECT_EQ(reg2.offer(spec(1, 60_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg2.offer(spec(2, 30_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg2.offer(spec(4, 80_MiB)), Admission::kQueued);
    EXPECT_EQ(reg2.offer(spec(5, 10_MiB)), Admission::kQueued);
    auto admitted = reg2.release(2); // 60 used, head needs 80
    EXPECT_TRUE(admitted.empty());
    EXPECT_EQ(reg2.queued(), 2u);
    admitted = reg2.release(1); // all free: head fits, then 5 too
    ASSERT_EQ(admitted.size(), 2u);
    EXPECT_EQ(admitted[0].id, 4u);
    EXPECT_EQ(admitted[1].id, 5u);
}

TEST(TenantRegistry, RejectsReservationLargerThanBudget)
{
    TenantRegistry reg(budget(100_MiB));
    EXPECT_EQ(reg.offer(spec(1, 101_MiB)), Admission::kRejected);
    EXPECT_EQ(reg.rejected(), 1u);
    EXPECT_EQ(reg.queued(), 0u) << "a session that can never fit "
                                   "must not camp in the queue";
}

TEST(TenantRegistry, RejectsWhenQueueFull)
{
    TenantRegistry reg(budget(100_MiB, 64, /*max_queued=*/1));
    EXPECT_EQ(reg.offer(spec(1, 100_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 10_MiB)), Admission::kQueued);
    EXPECT_EQ(reg.offer(spec(3, 10_MiB)), Admission::kRejected);
}

TEST(TenantRegistry, MaxActiveCapsConcurrency)
{
    TenantRegistry reg(budget(100_MiB, /*max_active=*/2));
    EXPECT_EQ(reg.offer(spec(1, 1_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 1_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(3, 1_MiB)), Admission::kQueued);
    auto admitted = reg.release(2);
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0].id, 3u);
}

// -------------------------------------------------------------------
// Live-pressure admission (the gauge-aware control-plane mode).
// -------------------------------------------------------------------

AdmissionConfig
liveBudget(uint64_t bytes, uint32_t max_active = 64,
           uint32_t max_queued = 64)
{
    return AdmissionConfig{bytes, max_active, max_queued,
                           AdmissionMode::kLivePressure};
}

TEST(TenantRegistryLive, AdmitsOnMeasuredPressureNotReservations)
{
    // Static reservations sum to 3x the budget, but measured pressure
    // is low: live mode packs all three sessions in where the static
    // mode would queue two.
    uint64_t pressure = 10_MiB;
    TenantRegistry reg(liveBudget(100_MiB));
    reg.setLivePressure([&pressure] { return pressure; });
    EXPECT_EQ(reg.offer(spec(1, 80_MiB)), Admission::kAdmitted);
    // Each noteGaugeMarked() models the server re-marking the gauge
    // window: the sample now covers the session just admitted, so its
    // declared reserve leaves the unmeasured headroom term.
    reg.noteGaugeMarked();
    EXPECT_EQ(reg.offer(spec(2, 80_MiB)), Admission::kAdmitted);
    reg.noteGaugeMarked();
    EXPECT_EQ(reg.offer(spec(3, 80_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.active(), 3u);
}

TEST(TenantRegistryLive, BackToBackOffersCountUnmeasuredAdmits)
{
    // Two offers inside one monitor tick see the same stale gauge
    // sample. The first admit's declared reserve must count against
    // the second offer's headroom, or a burst of arrivals lands 2x
    // the budget of working sets on a tier whose measured pressure
    // has not caught up yet.
    uint64_t pressure = 10_MiB;
    TenantRegistry reg(liveBudget(100_MiB));
    reg.setLivePressure([&pressure] { return pressure; });
    EXPECT_EQ(reg.offer(spec(1, 50_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.unmeasuredReserve(), 50_MiB);
    EXPECT_EQ(reg.offer(spec(2, 50_MiB)), Admission::kQueued)
        << "10 + 50 (unmeasured) + 50 exceeds the 100 MiB budget";
    EXPECT_EQ(reg.active(), 1u);

    // The window re-marks with tenant 1's real footprint in the
    // sample: still no room at 60 MiB measured...
    pressure = 60_MiB;
    reg.noteGaugeMarked();
    EXPECT_EQ(reg.unmeasuredReserve(), 0u);
    EXPECT_TRUE(reg.pumpAdmission().empty());

    // ...but once the measured gauge recedes, the waiter admits.
    pressure = 45_MiB;
    reg.noteGaugeMarked();
    auto admitted = reg.pumpAdmission();
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0].id, 2u);
}

TEST(TenantRegistryLive, ReleaseForgetsUnmeasuredReserve)
{
    // A session that admits and drains within one gauge window must
    // not leave a ghost reserve behind blocking later arrivals.
    uint64_t pressure = 10_MiB;
    TenantRegistry reg(liveBudget(100_MiB));
    reg.setLivePressure([&pressure] { return pressure; });
    EXPECT_EQ(reg.offer(spec(1, 50_MiB)), Admission::kAdmitted);
    reg.release(1);
    EXPECT_EQ(reg.unmeasuredReserve(), 0u);
    EXPECT_EQ(reg.offer(spec(2, 60_MiB)), Admission::kAdmitted);
}

TEST(TenantRegistryLive, HighPressureQueuesAndPumpAdmits)
{
    uint64_t pressure = 70_MiB;
    TenantRegistry reg(liveBudget(100_MiB));
    reg.setLivePressure([&pressure] { return pressure; });
    EXPECT_EQ(reg.offer(spec(1, 20_MiB)), Admission::kAdmitted);
    // 70 + 40 > 100: waits for the gauge to recede.
    EXPECT_EQ(reg.offer(spec(2, 40_MiB)), Admission::kQueued);
    EXPECT_EQ(reg.queued(), 1u);

    // Pressure drops a little: still no room, pump admits nobody.
    // (Each drop is a freshly measured window, so the registry is
    // told the sample covers everything admitted so far.)
    pressure = 65_MiB;
    reg.noteGaugeMarked();
    EXPECT_TRUE(reg.pumpAdmission().empty());

    // Pressure recedes enough: the pump admits the waiter with no
    // release having happened — headroom in live mode comes from the
    // gauge, not from reservations handed back.
    pressure = 55_MiB;
    reg.noteGaugeMarked();
    auto admitted = reg.pumpAdmission();
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0].id, 2u);
    EXPECT_EQ(reg.queued(), 0u);
    EXPECT_EQ(reg.active(), 2u);
}

TEST(TenantRegistryLive, HeadOfLinePreservedUnderPressure)
{
    uint64_t pressure = 90_MiB;
    TenantRegistry reg(liveBudget(100_MiB));
    reg.setLivePressure([&pressure] { return pressure; });
    EXPECT_EQ(reg.offer(spec(1, 5_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 40_MiB)), Admission::kQueued);
    // Would fit right now, but 2 is ahead: must queue behind it.
    EXPECT_EQ(reg.offer(spec(3, 5_MiB)), Admission::kQueued);
    pressure = 50_MiB;
    auto admitted = reg.pumpAdmission();
    ASSERT_EQ(admitted.size(), 2u);
    EXPECT_EQ(admitted[0].id, 2u);
    EXPECT_EQ(admitted[1].id, 3u);
}

TEST(TenantRegistryLive, ReleaseStillPumpsAndNeverTouchesGauge)
{
    uint64_t pressure = 95_MiB;
    TenantRegistry reg(liveBudget(100_MiB));
    reg.setLivePressure([&pressure] { return pressure; });
    EXPECT_EQ(reg.offer(spec(1, 4_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 30_MiB)), Admission::kQueued);
    EXPECT_EQ(reg.gauge().used(), 0u)
        << "live mode accounts on the machine gauge, not this one";

    // The drain drops measured pressure; release() pumps the queue.
    pressure = 20_MiB;
    auto admitted = reg.release(1);
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0].id, 2u);
    EXPECT_EQ(reg.active(), 1u);
    reg.release(2);
    EXPECT_EQ(reg.active(), 0u);
}

TEST(TenantRegistryLive, OnePumpCannotOverAdmitAgainstStaleSample)
{
    // Pressure recedes once; many waiters are queued. A single pump
    // judges them against the same gauge sample, so the reserves it
    // admits must accumulate into the headroom term — the pump stops
    // when declared working sets fill the budget, instead of
    // admitting everyone against the stale low reading.
    uint64_t pressure = 90_MiB;
    TenantRegistry reg(liveBudget(100_MiB));
    reg.setLivePressure([&pressure] { return pressure; });
    EXPECT_EQ(reg.offer(spec(1, 5_MiB)), Admission::kAdmitted);
    for (runtime::StreamId id = 2; id <= 11; ++id)
        EXPECT_EQ(reg.offer(spec(id, 20_MiB)), Admission::kQueued);

    pressure = 10_MiB;
    auto admitted = reg.pumpAdmission();
    // 10 + 20 + 20 + 20 + 20 <= 100, but a fifth 20 MiB would not fit.
    ASSERT_EQ(admitted.size(), 4u);
    EXPECT_EQ(reg.queued(), 6u);

    // The next pump re-reads the gauge; with pressure unchanged it
    // admits nobody further (the previous admits' state now shows up
    // in the measured pressure, not in a stale sample).
    pressure = 85_MiB;
    EXPECT_TRUE(reg.pumpAdmission().empty());
}

TEST(TenantRegistryLive, CanNeverFitStillRejected)
{
    uint64_t pressure = 0;
    TenantRegistry reg(liveBudget(100_MiB));
    reg.setLivePressure([&pressure] { return pressure; });
    EXPECT_EQ(reg.offer(spec(1, 101_MiB)), Admission::kRejected);
    EXPECT_EQ(reg.rejected(), 1u);
}

TEST(TenantRegistry, ZeroReservationAlwaysFitsBudget)
{
    TenantRegistry reg(budget(1));
    EXPECT_EQ(reg.offer(spec(1, 0)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 0)), Admission::kAdmitted);
    EXPECT_EQ(reg.gauge().used(), 0u);
}

TEST(TenantRegistry, EverAdmittedCountsReadmissions)
{
    TenantRegistry reg(budget(100_MiB));
    EXPECT_EQ(reg.offer(spec(1, 100_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 100_MiB)), Admission::kQueued);
    reg.release(1);
    EXPECT_EQ(reg.everAdmitted(), 2u);
}

} // namespace
} // namespace sbhbm::serve
