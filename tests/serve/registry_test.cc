#include "serve/tenant_registry.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace sbhbm::serve {
namespace {

TenantSpec
spec(runtime::StreamId id, uint64_t reserve)
{
    TenantSpec t;
    t.id = id;
    t.hbm_reserve_bytes = reserve;
    return t;
}

AdmissionConfig
budget(uint64_t bytes, uint32_t max_active = 64,
       uint32_t max_queued = 64)
{
    return AdmissionConfig{bytes, max_active, max_queued};
}

TEST(TenantRegistry, AdmitsWithinBudget)
{
    TenantRegistry reg(budget(100_MiB));
    EXPECT_EQ(reg.offer(spec(1, 40_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 60_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.active(), 2u);
    EXPECT_EQ(reg.gauge().used(), 100_MiB);
}

TEST(TenantRegistry, QueuesPastBudgetAndAdmitsOnRelease)
{
    TenantRegistry reg(budget(100_MiB));
    EXPECT_EQ(reg.offer(spec(1, 80_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 30_MiB)), Admission::kQueued);
    EXPECT_EQ(reg.queued(), 1u);

    auto admitted = reg.release(1);
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0].id, 2u);
    EXPECT_EQ(reg.active(), 1u);
    EXPECT_EQ(reg.queued(), 0u);
    EXPECT_EQ(reg.gauge().used(), 30_MiB);
}

TEST(TenantRegistry, ReleaseAdmitsInArrivalOrderWithHeadOfLine)
{
    TenantRegistry reg(budget(100_MiB));
    EXPECT_EQ(reg.offer(spec(1, 100_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 90_MiB)), Admission::kQueued);
    EXPECT_EQ(reg.offer(spec(3, 10_MiB)), Admission::kQueued);

    // Tenant 3 would fit beside 2's 90 MiB, but 2 arrived first and
    // admission preserves head-of-line order: both admit together
    // only when both fit.
    auto admitted = reg.release(1);
    ASSERT_EQ(admitted.size(), 2u);
    EXPECT_EQ(admitted[0].id, 2u);
    EXPECT_EQ(admitted[1].id, 3u);
}

TEST(TenantRegistry, HeadOfLineBlocksSmallerWaiters)
{
    TenantRegistry reg(budget(100_MiB));
    EXPECT_EQ(reg.offer(spec(1, 60_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 60_MiB)), Admission::kQueued);
    EXPECT_EQ(reg.offer(spec(3, 10_MiB)), Admission::kQueued);
    // Tenant 3 fits beside 1 right now, but 2 is ahead of it in the
    // queue and does not fit: a release that only frees room for 3
    // must admit nobody (no starving the big waiter).
    TenantRegistry reg2(budget(100_MiB));
    EXPECT_EQ(reg2.offer(spec(1, 60_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg2.offer(spec(2, 30_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg2.offer(spec(4, 80_MiB)), Admission::kQueued);
    EXPECT_EQ(reg2.offer(spec(5, 10_MiB)), Admission::kQueued);
    auto admitted = reg2.release(2); // 60 used, head needs 80
    EXPECT_TRUE(admitted.empty());
    EXPECT_EQ(reg2.queued(), 2u);
    admitted = reg2.release(1); // all free: head fits, then 5 too
    ASSERT_EQ(admitted.size(), 2u);
    EXPECT_EQ(admitted[0].id, 4u);
    EXPECT_EQ(admitted[1].id, 5u);
}

TEST(TenantRegistry, RejectsReservationLargerThanBudget)
{
    TenantRegistry reg(budget(100_MiB));
    EXPECT_EQ(reg.offer(spec(1, 101_MiB)), Admission::kRejected);
    EXPECT_EQ(reg.rejected(), 1u);
    EXPECT_EQ(reg.queued(), 0u) << "a session that can never fit "
                                   "must not camp in the queue";
}

TEST(TenantRegistry, RejectsWhenQueueFull)
{
    TenantRegistry reg(budget(100_MiB, 64, /*max_queued=*/1));
    EXPECT_EQ(reg.offer(spec(1, 100_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 10_MiB)), Admission::kQueued);
    EXPECT_EQ(reg.offer(spec(3, 10_MiB)), Admission::kRejected);
}

TEST(TenantRegistry, MaxActiveCapsConcurrency)
{
    TenantRegistry reg(budget(100_MiB, /*max_active=*/2));
    EXPECT_EQ(reg.offer(spec(1, 1_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 1_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(3, 1_MiB)), Admission::kQueued);
    auto admitted = reg.release(2);
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0].id, 3u);
}

TEST(TenantRegistry, ZeroReservationAlwaysFitsBudget)
{
    TenantRegistry reg(budget(1));
    EXPECT_EQ(reg.offer(spec(1, 0)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 0)), Admission::kAdmitted);
    EXPECT_EQ(reg.gauge().used(), 0u);
}

TEST(TenantRegistry, EverAdmittedCountsReadmissions)
{
    TenantRegistry reg(budget(100_MiB));
    EXPECT_EQ(reg.offer(spec(1, 100_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 100_MiB)), Admission::kQueued);
    reg.release(1);
    EXPECT_EQ(reg.everAdmitted(), 2u);
}

} // namespace
} // namespace sbhbm::serve
