#include "serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/units.h"
#include "serve/load_driver.h"

namespace sbhbm::serve {
namespace {

ServeConfig
smallConfig()
{
    ServeConfig cfg;
    cfg.engine.cores = 8;
    cfg.engine.max_inflight_bundles = 256;
    cfg.window_ns = 20 * kNsPerMs;
    return cfg;
}

TenantSpec
smallTenant(runtime::StreamId id, double weight = 1.0,
            uint64_t records = 40'000)
{
    TenantSpec t;
    t.id = id;
    t.name = "t" + std::to_string(id);
    t.weight = weight;
    t.total_records = records;
    t.bundle_records = 2'000;
    t.offered_rate = 20e6;
    t.poisson_arrivals = true;
    t.hbm_reserve_bytes = 8_MiB;
    t.max_inflight_bundles = 8;
    return t;
}

TEST(Server, SingleTenantRunsToCompletion)
{
    Server server(smallConfig());
    server.submit(smallTenant(1));
    server.run();

    ASSERT_EQ(server.reports().size(), 1u);
    const TenantReport &r = server.reports()[0];
    EXPECT_EQ(r.admission, Admission::kAdmitted);
    EXPECT_EQ(r.records, 40'000u);
    EXPECT_GT(r.output_records, 0u);
    EXPECT_GT(r.throughput_mrps, 0.0);
    EXPECT_GT(r.windows, 0u);
    EXPECT_GT(r.tasks, 0u);
    EXPECT_GT(r.cpu_ns, 0.0);
}

TEST(Server, ConcurrentTenantsAllDrain)
{
    Server server(smallConfig());
    for (uint32_t i = 1; i <= 4; ++i)
        server.submit(smallTenant(i, i <= 1 ? 2.0 : 1.0));
    server.run();

    ASSERT_EQ(server.reports().size(), 4u);
    for (const TenantReport &r : server.reports()) {
        EXPECT_EQ(r.admission, Admission::kAdmitted);
        EXPECT_EQ(r.records, 40'000u) << "tenant " << r.spec.id;
        EXPECT_GT(r.served_slots, 0u);
    }
    EXPECT_GT(server.fairnessIndex(), 0.5);
}

/** The determinism anchors of one run, comparable bit for bit. */
struct Fingerprint
{
    std::vector<double> cpu_ns;
    std::vector<uint64_t> hbm, dram, tasks, records;
    std::vector<double> p50, p99;

    static Fingerprint
    of(const Server &server)
    {
        Fingerprint f;
        for (const TenantReport &r : server.reports()) {
            f.cpu_ns.push_back(r.cpu_ns);
            f.hbm.push_back(r.hbm_bytes);
            f.dram.push_back(r.dram_bytes);
            f.tasks.push_back(r.tasks);
            f.records.push_back(r.records);
            f.p50.push_back(r.p50_s);
            f.p99.push_back(r.p99_s);
        }
        return f;
    }

    bool
    operator==(const Fingerprint &o) const
    {
        return cpu_ns == o.cpu_ns && hbm == o.hbm && dram == o.dram
               && tasks == o.tasks && records == o.records
               && p50 == o.p50 && p99 == o.p99;
    }
};

std::vector<TenantSpec>
mixedFleet()
{
    std::vector<TenantSpec> fleet;
    for (uint32_t i = 1; i <= 4; ++i) {
        TenantSpec t = smallTenant(i, i == 1 ? 4.0 : 1.0,
                                   i == 1 ? 80'000 : 30'000);
        t.query = i % 2 == 0 ? queries::QueryId::kAvgPerKey
                             : queries::QueryId::kSumPerKey;
        t.arrives_at = (i - 1) * 5 * kNsPerMs;
        fleet.push_back(t);
    }
    return fleet;
}

TEST(Server, RepeatedRunsAreBitIdentical)
{
    Server a(smallConfig());
    a.submitFleet(mixedFleet());
    a.run();

    Server b(smallConfig());
    b.submitFleet(mixedFleet());
    b.run();

    EXPECT_TRUE(Fingerprint::of(a) == Fingerprint::of(b))
        << "per-tenant cost totals / SLA percentiles must be "
           "bit-identical across repeated runs";
}

TEST(Server, ResultsIndependentOfSubmissionOrder)
{
    Server a(smallConfig());
    a.submitFleet(mixedFleet());
    a.run();

    Server b(smallConfig());
    auto reversed = mixedFleet();
    std::reverse(reversed.begin(), reversed.end());
    b.submitFleet(reversed);
    b.run();

    EXPECT_TRUE(Fingerprint::of(a) == Fingerprint::of(b))
        << "per-tenant results must not depend on the order sessions "
           "were submitted in";
}

TEST(Server, WeightedFairSharingUnderOverload)
{
    // Session lengths proportional to weight: under weighted fair
    // sharing everyone drains together and throughput lands on the
    // weighted share.
    Server server(smallConfig());
    server.submit(smallTenant(1, 3.0, 90'000));
    for (uint32_t i = 2; i <= 4; ++i)
        server.submit(smallTenant(i, 1.0, 30'000));
    server.run();

    double aggregate = 0;
    for (const TenantReport &r : server.reports())
        aggregate += r.throughput_mrps;
    const double sum_w = 3.0 + 3 * 1.0;
    for (const TenantReport &r : server.reports()) {
        const double share = aggregate * r.spec.weight / sum_w;
        EXPECT_GE(r.throughput_mrps, 0.5 * share)
            << "tenant " << r.spec.id << " starved";
        EXPECT_LE(r.throughput_mrps, 2.0 * share)
            << "tenant " << r.spec.id << " hogged";
    }
    EXPECT_GT(server.fairnessIndex(), 0.8);
}

TEST(Server, QueuedSessionRunsAfterRelease)
{
    ServeConfig cfg = smallConfig();
    cfg.admission.hbm_budget_bytes = 10_MiB;
    Server server(cfg);
    server.submit(smallTenant(1)); // 8 MiB: admitted
    server.submit(smallTenant(2)); // queued behind it
    server.run();

    ASSERT_EQ(server.reports().size(), 2u);
    const TenantReport &r1 = server.reports()[0];
    const TenantReport &r2 = server.reports()[1];
    EXPECT_EQ(r1.admission, Admission::kAdmitted);
    EXPECT_FALSE(r1.was_queued);
    EXPECT_EQ(r2.admission, Admission::kAdmitted);
    EXPECT_TRUE(r2.was_queued);
    EXPECT_GE(r2.started_at, r1.finished_at)
        << "queued session starts only when the running one drains";
    EXPECT_EQ(r2.records, 40'000u);
}

TEST(Server, OversizedSessionRejected)
{
    ServeConfig cfg = smallConfig();
    cfg.admission.hbm_budget_bytes = 10_MiB;
    Server server(cfg);
    TenantSpec big = smallTenant(1);
    big.hbm_reserve_bytes = 11_MiB;
    server.submit(big);
    server.submit(smallTenant(2));
    server.run();

    EXPECT_EQ(server.reports()[0].admission, Admission::kRejected);
    EXPECT_EQ(server.reports()[0].records, 0u);
    EXPECT_EQ(server.reports()[1].admission, Admission::kAdmitted);
}

TEST(Server, LegacyFifoPolicyStillDrains)
{
    ServeConfig cfg = smallConfig();
    cfg.fair_share = false;
    Server server(cfg);
    for (uint32_t i = 1; i <= 3; ++i)
        server.submit(smallTenant(i));
    server.run();
    for (const TenantReport &r : server.reports()) {
        EXPECT_EQ(r.admission, Admission::kAdmitted);
        EXPECT_EQ(r.records, 40'000u);
        EXPECT_EQ(r.served_slots, 0u)
            << "fair scheduler not installed, so it saw no tasks";
    }
}

TEST(Server, LoadDriverFleetIsDeterministic)
{
    FleetConfig fc;
    fc.tenants = 6;
    fc.seed = 7;
    fc.arrival_span = 50 * kNsPerMs;
    const auto a = makeFleet(fc);
    const auto b = makeFleet(fc);
    ASSERT_EQ(a.size(), 6u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].arrives_at, b[i].arrives_at);
        EXPECT_EQ(a[i].offered_rate, b[i].offered_rate);
    }
    // 25% of 6 rounds up to 2 hot tenants, leading the fleet.
    EXPECT_EQ(a[0].weight, fc.hot_weight);
    EXPECT_EQ(a[1].weight, fc.hot_weight);
    EXPECT_EQ(a[2].weight, fc.cold_weight);
    // Arrivals are staggered and non-decreasing.
    for (size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i].arrives_at, a[i - 1].arrives_at);
    EXPECT_GT(a.back().arrives_at, 0u);
}

TEST(Server, SlaTrackerCountsViolations)
{
    // A tiny engine + one overloaded tenant with a tight SLA: some
    // windows must miss it, and the tracker must see them.
    ServeConfig cfg = smallConfig();
    cfg.engine.cores = 1;
    cfg.engine.target_delay = 100 * kNsPerUs; // 0.1 ms: unmeetable
    Server server(cfg);
    server.submit(smallTenant(1));
    server.run();

    const TenantReport &r = server.reports()[0];
    EXPECT_GT(r.windows, 0u);
    EXPECT_GT(r.sla_violations, 0u);
    EXPECT_LE(r.sla_violations, r.windows);
    EXPECT_GE(r.p99_s, r.p50_s);
}

TEST(ServerPressure, LiveAdmissionPacksOverstatedReservations)
{
    // Reservations sum far past the budget, but the sessions' real
    // working sets are small. Arrivals are spaced a couple of
    // admission ticks apart so each offer is judged against a freshly
    // measured gauge window: static mode serializes the fleet
    // (queues on paper reservations), live mode admits everyone.
    auto makeCfg = [](AdmissionMode mode) {
        ServeConfig cfg = smallConfig();
        cfg.admission = AdmissionConfig{64_MiB, 64, 64, mode};
        cfg.engine.monitor_period = kNsPerMs;
        return cfg;
    };
    auto fleet = [] {
        std::vector<TenantSpec> v;
        for (runtime::StreamId id = 1; id <= 4; ++id) {
            // 200k records at 20 Mrec/s = 10 ms of ingest: every
            // session outlives the whole arrival span.
            TenantSpec t = smallTenant(id, 1, 200'000);
            t.hbm_reserve_bytes = 30_MiB; // 4 x 30 > 64 MiB budget
            t.arrives_at = (id - 1) * 2 * kNsPerMs;
            v.push_back(t);
        }
        return v;
    };

    Server stat(makeCfg(AdmissionMode::kStaticReservation));
    stat.submitFleet(fleet());
    stat.run();
    uint64_t queued_static = 0;
    for (const TenantReport &r : stat.reports())
        queued_static += r.was_queued ? 1 : 0;
    EXPECT_EQ(queued_static, 2u) << "static mode must serialize";

    Server live(makeCfg(AdmissionMode::kLivePressure));
    live.submitFleet(fleet());
    live.run();
    for (const TenantReport &r : live.reports()) {
        EXPECT_EQ(r.admission, Admission::kAdmitted);
        EXPECT_FALSE(r.was_queued)
            << "live pressure is low: tenant " << r.spec.id
            << " must not wait on paper reservations";
        EXPECT_EQ(r.records, 200'000u);
    }
}

TEST(ServerPressure, AdmissionBurstJudgedAgainstUnmeasuredReserves)
{
    // The whole fleet arrives within one admission tick, so every
    // offer sees the same stale (near-zero) gauge sample. The
    // declared reserves of the sessions just admitted must count
    // against the later offers: exactly two 30 MiB sessions fit the
    // 64 MiB budget up front, the rest wait for a measured window —
    // instead of the whole burst being waved through at 2x budget.
    ServeConfig cfg = smallConfig();
    cfg.admission =
        AdmissionConfig{64_MiB, 64, 64, AdmissionMode::kLivePressure};
    Server server(cfg);
    for (runtime::StreamId id = 1; id <= 4; ++id) {
        TenantSpec t = smallTenant(id);
        t.hbm_reserve_bytes = 30_MiB;
        server.submit(t);
    }
    server.run();

    uint64_t queued = 0;
    for (const TenantReport &r : server.reports()) {
        EXPECT_EQ(r.admission, Admission::kAdmitted);
        EXPECT_EQ(r.records, 40'000u) << "queued sessions still drain";
        queued += r.was_queued ? 1 : 0;
    }
    EXPECT_EQ(queued, 2u)
        << "one tick's admits must cap at the declared-reserve budget";
}

TEST(ServerPressure, LiveAdmissionReportsOccupancy)
{
    ServeConfig cfg = smallConfig();
    cfg.admission.mode = AdmissionMode::kLivePressure;
    Server server(cfg);
    server.submit(smallTenant(1));
    server.run();
    const TenantReport &r = server.reports()[0];
    EXPECT_EQ(r.admission, Admission::kAdmitted);
    EXPECT_GT(r.hbm_peak_bytes, 0u)
        << "per-tenant occupancy must be accounted";
    EXPECT_EQ(r.demoted_kpas, 0u) << "no pressure, no demotion";
}

TEST(ServerPressure, SlaDemotionEngagesAndSessionsDrain)
{
    // Unmeetable SLA + demotion on: breaching tenants get their
    // placement class demoted (sla_demotions counts episodes), and
    // every session still drains fully.
    ServeConfig cfg = smallConfig();
    cfg.engine.cores = 1;
    cfg.engine.target_delay = 100 * kNsPerUs; // unmeetable
    cfg.sla_demotion = true;
    Server server(cfg);
    server.submit(smallTenant(1));
    server.submit(smallTenant(2));
    server.run();

    uint64_t demotion_episodes = 0;
    for (const TenantReport &r : server.reports()) {
        EXPECT_EQ(r.records, 40'000u) << "demoted tenants keep draining";
        demotion_episodes += r.sla_demotions;
    }
    EXPECT_GT(demotion_episodes, 0u);

    // Deterministic: the same fleet reproduces the same episodes.
    Server again(cfg);
    again.submit(smallTenant(1));
    again.submit(smallTenant(2));
    again.run();
    uint64_t episodes_again = 0;
    for (const TenantReport &r : again.reports())
        episodes_again += r.sla_demotions;
    EXPECT_EQ(episodes_again, demotion_episodes);
}

} // namespace
} // namespace sbhbm::serve
