/**
 * @file
 * The sharded serving layer:
 *  - ShardRegistry: load-vector placement onto the least-loaded shard
 *    under per-shard budget slices, cross-shard migration accounting,
 *    and the server-level determinism contract (same fleet, any
 *    submission order => identical placement and per-tenant results);
 *  - ShardPressure: the breach-escalation path — a pressure-director
 *    sweep that cannot demote its way out of a high-water breach
 *    fires the breach hook, and at the server level migrates the
 *    shard's heaviest movable session to the emptiest shard with
 *    record conservation across segments;
 *  - Steal: idle shards run backlogged shards' non-urgent tasks with
 *    every cost and completion charged to the home shard, without
 *    breaking bit-identical repeatability.
 */

#include "serve/server.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/units.h"
#include "mem/pressure_director.h"
#include "serve/load_driver.h"

namespace sbhbm::serve {
namespace {

TenantSpec
spec(runtime::StreamId id, uint64_t reserve, double rate = 0)
{
    TenantSpec t;
    t.id = id;
    t.name = "t" + std::to_string(id);
    t.hbm_reserve_bytes = reserve;
    t.offered_rate = rate;
    return t;
}

AdmissionConfig
shardedBudget(uint64_t bytes, uint32_t shards,
              AdmissionMode mode = AdmissionMode::kStaticReservation)
{
    AdmissionConfig cfg;
    cfg.hbm_budget_bytes = bytes;
    cfg.shards = shards;
    cfg.mode = mode;
    return cfg;
}

// -------------------------------------------------------------------
// ShardRegistry: placement + accounting
// -------------------------------------------------------------------

TEST(ShardRegistry, PlacesOnLeastLoadedShardTiesToLowestIndex)
{
    TenantRegistry reg(shardedBudget(400_MiB, 4));
    EXPECT_EQ(reg.perShardBudget(), 100_MiB);

    // A hot session pins shard 0's load far above the others.
    EXPECT_EQ(reg.offer(spec(1, 10_MiB, 1e9)), Admission::kAdmitted);
    EXPECT_EQ(reg.shardOf(1), 0u);
    // Equal-load arrivals fan out over the empty shards in index
    // order (stable ties).
    for (runtime::StreamId id = 2; id <= 4; ++id) {
        EXPECT_EQ(reg.offer(spec(id, 10_MiB, 1.0)), Admission::kAdmitted);
        EXPECT_EQ(reg.shardOf(id), id - 1);
    }
    // Next arrival: shards 1..3 tie for least loaded, 0 is hot —
    // lowest index among the tie wins, never the hot shard.
    EXPECT_EQ(reg.offer(spec(5, 10_MiB, 1.0)), Admission::kAdmitted);
    EXPECT_EQ(reg.shardOf(5), 1u);
    EXPECT_EQ(reg.shardActive(0), 1u);
    EXPECT_EQ(reg.shardActive(1), 2u);
    EXPECT_GT(reg.shardLoad(0), reg.shardLoad(1));
}

TEST(ShardRegistry, PerShardBudgetGovernsAdmission)
{
    // 100 MiB over 4 shards: 25 MiB per shard.
    TenantRegistry reg(shardedBudget(100_MiB, 4));

    // Bigger than a whole shard's slice: can never fit anywhere.
    EXPECT_EQ(reg.offer(spec(9, 30_MiB)), Admission::kRejected);
    EXPECT_EQ(reg.rejected(), 1u);

    // Four 20 MiB sessions land on four distinct shards.
    for (runtime::StreamId id = 1; id <= 4; ++id) {
        EXPECT_EQ(reg.offer(spec(id, 20_MiB)), Admission::kAdmitted);
        EXPECT_EQ(reg.shardOf(id), id - 1);
    }
    // The fifth fits the global budget on paper (80 + 20 <= 100) but
    // no single shard has 20 MiB of headroom left: it queues.
    EXPECT_EQ(reg.offer(spec(5, 20_MiB)), Admission::kQueued);
    EXPECT_EQ(reg.queued(), 1u);

    // A release frees shard 0; the waiter lands exactly there.
    const auto admitted = reg.release(1);
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0].id, 5u);
    EXPECT_EQ(reg.shardOf(5), 0u);
    EXPECT_EQ(reg.gauge(0).used(), 20_MiB);
    EXPECT_EQ(reg.queued(), 0u);
}

TEST(ShardRegistry, MigrateConservesGaugeAccounting)
{
    TenantRegistry reg(shardedBudget(80_MiB, 2)); // 40 MiB per shard
    EXPECT_EQ(reg.offer(spec(1, 30_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.offer(spec(2, 30_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.shardOf(1), 0u);
    EXPECT_EQ(reg.shardOf(2), 1u);

    // Destination full: nothing moves, nothing leaks.
    EXPECT_FALSE(reg.migrate(1, 1));
    EXPECT_EQ(reg.shardOf(1), 0u);
    EXPECT_EQ(reg.gauge(0).used(), 30_MiB);
    EXPECT_EQ(reg.gauge(1).used(), 30_MiB);
    EXPECT_EQ(reg.migrations(), 0u);

    reg.release(2);
    EXPECT_TRUE(reg.migrate(1, 1));
    EXPECT_EQ(reg.shardOf(1), 1u);
    EXPECT_EQ(reg.gauge(0).used(), 0u);
    EXPECT_EQ(reg.gauge(1).used(), 30_MiB);
    EXPECT_EQ(reg.migrations(), 1u);

    // Same-shard migration is a successful no-op.
    EXPECT_TRUE(reg.migrate(1, 1));
    EXPECT_EQ(reg.migrations(), 1u);
}

TEST(ShardRegistry, LiveMigrationMovesUnmeasuredReserve)
{
    TenantRegistry reg(
        shardedBudget(100_MiB, 2, AdmissionMode::kLivePressure));
    EXPECT_EQ(reg.offer(spec(1, 20_MiB)), Admission::kAdmitted);
    EXPECT_EQ(reg.shardOf(1), 0u);
    EXPECT_EQ(reg.unmeasuredReserve(0), 20_MiB);

    // The moved reserve is unmeasured on the destination until its
    // gauge window covers it; the source's term drops immediately.
    EXPECT_TRUE(reg.migrate(1, 1));
    EXPECT_EQ(reg.unmeasuredReserve(0), 0u);
    EXPECT_EQ(reg.unmeasuredReserve(1), 20_MiB);
    reg.noteGaugeMarked(1);
    EXPECT_EQ(reg.unmeasuredReserve(1), 0u);
}

// -------------------------------------------------------------------
// ShardRegistry: server-level placement + determinism
// -------------------------------------------------------------------

ServeConfig
shardedConfig(uint32_t shards)
{
    ServeConfig cfg;
    cfg.engine.cores = 8;
    cfg.engine.max_inflight_bundles = 256;
    cfg.window_ns = 20 * kNsPerMs;
    cfg.shards = shards;
    return cfg;
}

TenantSpec
shardTenant(runtime::StreamId id, uint64_t records = 30'000)
{
    TenantSpec t;
    t.id = id;
    t.name = "t" + std::to_string(id);
    t.total_records = records;
    t.bundle_records = 2'000;
    t.offered_rate = 20e6;
    t.poisson_arrivals = true;
    t.hbm_reserve_bytes = 8_MiB;
    t.max_inflight_bundles = 8;
    return t;
}

/** The determinism anchors of one run, comparable bit for bit. */
struct Fingerprint
{
    std::vector<uint32_t> shard;
    std::vector<double> cpu_ns;
    std::vector<uint64_t> hbm, dram, tasks, records, slots;
    std::vector<double> p50, p99;

    static Fingerprint
    of(const Server &server)
    {
        Fingerprint f;
        for (const TenantReport &r : server.reports()) {
            f.shard.push_back(r.shard);
            f.cpu_ns.push_back(r.cpu_ns);
            f.hbm.push_back(r.hbm_bytes);
            f.dram.push_back(r.dram_bytes);
            f.tasks.push_back(r.tasks);
            f.records.push_back(r.records);
            f.slots.push_back(r.served_slots);
            f.p50.push_back(r.p50_s);
            f.p99.push_back(r.p99_s);
        }
        return f;
    }

    bool
    operator==(const Fingerprint &o) const
    {
        return shard == o.shard && cpu_ns == o.cpu_ns && hbm == o.hbm
               && dram == o.dram && tasks == o.tasks
               && records == o.records && slots == o.slots
               && p50 == o.p50 && p99 == o.p99;
    }
};

TEST(ShardRegistry, FleetSpreadsAcrossShardsAndDrains)
{
    Server server(shardedConfig(4));
    for (runtime::StreamId id = 1; id <= 8; ++id)
        server.submit(shardTenant(id));
    server.run();

    ASSERT_EQ(server.reports().size(), 8u);
    std::set<uint32_t> used;
    std::vector<uint64_t> shard_tasks(4, 0);
    for (const TenantReport &r : server.reports()) {
        EXPECT_EQ(r.admission, Admission::kAdmitted);
        EXPECT_EQ(r.records, 30'000u) << "tenant " << r.spec.id;
        EXPECT_EQ(r.migrations, 0u);
        used.insert(r.shard);
        shard_tasks[r.shard] += r.tasks;
        // Single-segment sessions: the report's task total is the
        // home executor's per-stream count, nothing more.
        EXPECT_EQ(r.tasks,
                  server.engine(r.shard)
                      .exec()
                      .streamStats(r.spec.id)
                      .completed)
            << "tenant " << r.spec.id;
    }
    EXPECT_EQ(used.size(), 4u) << "8 equal sessions over 4 shards "
                                  "must use every shard";
    // Per-shard accounting closes: each executor completed exactly
    // its residents' tasks (no stealing, no migration here).
    for (uint32_t s = 0; s < 4; ++s)
        EXPECT_EQ(server.engine(s).exec().completedTasks(),
                  shard_tasks[s])
            << "shard " << s;
    EXPECT_GT(server.fairnessIndex(), 0.9);
}

std::vector<TenantSpec>
shardedMixedFleet()
{
    std::vector<TenantSpec> fleet;
    for (runtime::StreamId id = 1; id <= 8; ++id) {
        TenantSpec t = shardTenant(id, id == 1 ? 60'000 : 30'000);
        t.weight = id == 1 ? 4.0 : 1.0;
        t.query = id % 2 == 0 ? queries::QueryId::kAvgPerKey
                              : queries::QueryId::kSumPerKey;
        t.offered_rate = id % 3 == 0 ? 8e6 : 20e6;
        t.hbm_reserve_bytes = (id % 2 == 0 ? 4 : 8) * 1_MiB;
        t.arrives_at = (id - 1) * 2 * kNsPerMs;
        fleet.push_back(t);
    }
    return fleet;
}

TEST(ShardRegistry, PlacementAndResultsIndependentOfSubmissionOrder)
{
    Server a(shardedConfig(4));
    a.submitFleet(shardedMixedFleet());
    a.run();

    // Same fleet, reversed submission order: identical placement and
    // per-tenant results, bit for bit.
    Server b(shardedConfig(4));
    std::vector<TenantSpec> reversed = shardedMixedFleet();
    std::reverse(reversed.begin(), reversed.end());
    b.submitFleet(reversed);
    b.run();

    EXPECT_TRUE(Fingerprint::of(a) == Fingerprint::of(b))
        << "shard assignment and per-tenant cost totals must not "
           "depend on the order sessions were submitted in";

    // And per-shard aggregates agree too.
    for (uint32_t s = 0; s < 4; ++s) {
        EXPECT_EQ(a.engine(s).exec().completedTasks(),
                  b.engine(s).exec().completedTasks())
            << "shard " << s;
        EXPECT_EQ(a.engine(s).exec().spawnedTasks(),
                  b.engine(s).exec().spawnedTasks())
            << "shard " << s;
    }
}

TEST(ShardRegistry, RepeatedShardedRunsAreBitIdentical)
{
    Server a(shardedConfig(4));
    a.submitFleet(shardedMixedFleet());
    a.run();

    Server b(shardedConfig(4));
    b.submitFleet(shardedMixedFleet());
    b.run();

    EXPECT_TRUE(Fingerprint::of(a) == Fingerprint::of(b));
}

// -------------------------------------------------------------------
// ShardPressure: breach escalation
// -------------------------------------------------------------------

TEST(ShardPressure, BreachHookFiresWithResidualWhenNothingDemotes)
{
    auto mc = sim::MachineConfig::knl();
    mc.hbm.capacity_bytes = 1_MiB;
    mem::HybridMemory hm(mc, sim::MemoryMode::kFlat);
    mem::PressureConfig pc;
    pc.enabled = true;
    pc.high_water = 0.80;
    pc.low_water = 0.50;
    mem::PressureDirector dir(hm, pc);

    uint32_t fires = 0;
    uint64_t residual = 0;
    dir.setBreachHook([&](uint64_t want) {
        ++fires;
        residual = want;
    });

    // 15 x 64 KiB charged = 93.75% used, above high water — and no
    // registered providers, so a full sweep demotes nothing.
    std::vector<mem::Block> blocks;
    for (int i = 0; i < 15; ++i)
        blocks.push_back(hm.alloc(60_KiB, mem::Tier::kHbm, false, 1));

    dir.tick();
    EXPECT_EQ(fires, 1u);
    EXPECT_EQ(dir.breachEscalations(), 1u);
    // Residual pressure = used minus the low-water target.
    EXPECT_EQ(residual, 960_KiB - 512_KiB);

    // Below high water the hook stays quiet.
    for (int i = 0; i < 10; ++i) {
        hm.free(blocks.back());
        blocks.pop_back();
    }
    dir.tick();
    EXPECT_EQ(fires, 1u);
    for (auto &b : blocks)
        hm.free(b);
}

TEST(ShardPressure, UnrelievableBreachMigratesTenantAcrossShards)
{
    // One hot SumPerKey session whose single open window overruns a
    // tiny HBM: with the default watermark cadence all state belongs
    // to the target window, so the director finds nothing cold to
    // demote and every breach escalates — the serving layer must
    // migrate the session to the empty shard and still conserve its
    // records across the drain-and-restart segments.
    ServeConfig cfg;
    cfg.engine.machine = sim::MachineConfig::knl();
    cfg.engine.machine.hbm.capacity_bytes = 4ull << 20;
    cfg.engine.cores = 4;
    cfg.engine.max_inflight_bundles = 2048;
    cfg.engine.monitor_period = kNsPerMs;
    cfg.engine.pressure.enabled = true;
    cfg.engine.pressure.high_water = 0.50;
    cfg.engine.pressure.low_water = 0.40;
    cfg.admission.hbm_budget_bytes = 64_MiB;
    cfg.shards = 2;
    cfg.shard_migration = true;

    TenantSpec t;
    t.id = 1;
    t.name = "hot";
    t.query = queries::QueryId::kSumPerKey;
    t.total_records = 200'000;
    t.bundle_records = 5'000;
    t.offered_rate = 2e7;
    t.hbm_reserve_bytes = 1_MiB;
    t.max_inflight_bundles = 64;

    Server server(cfg);
    server.submit(t);
    server.run();

    ASSERT_EQ(server.reports().size(), 1u);
    const TenantReport &r = server.reports()[0];
    EXPECT_EQ(r.admission, Admission::kAdmitted);
    EXPECT_GE(r.migrations, 1u) << "an unrelievable breach must "
                                   "escalate into a shard migration";
    EXPECT_EQ(server.registry().migrations(), uint64_t{r.migrations});
    EXPECT_GE(server.engine(0).director().breachEscalations(), 1u);
    // Conservation across segments: every record of the original
    // session was ingested exactly once, somewhere in the fleet.
    EXPECT_EQ(r.records, 200'000u);
    EXPECT_GT(r.output_records, 0u);
    EXPECT_LT(r.shard, 2u);
}

TEST(ShardPressure, MigrationRunsAreBitIdentical)
{
    auto run = [] {
        ServeConfig cfg;
        cfg.engine.machine = sim::MachineConfig::knl();
        cfg.engine.machine.hbm.capacity_bytes = 4ull << 20;
        cfg.engine.cores = 4;
        cfg.engine.max_inflight_bundles = 2048;
        cfg.engine.monitor_period = kNsPerMs;
        cfg.engine.pressure.enabled = true;
        cfg.engine.pressure.high_water = 0.50;
        cfg.engine.pressure.low_water = 0.40;
        cfg.admission.hbm_budget_bytes = 64_MiB;
        cfg.shards = 2;
        cfg.shard_migration = true;

        TenantSpec t;
        t.id = 1;
        t.query = queries::QueryId::kSumPerKey;
        t.total_records = 200'000;
        t.bundle_records = 5'000;
        t.offered_rate = 2e7;
        t.hbm_reserve_bytes = 1_MiB;
        t.max_inflight_bundles = 64;

        auto server = std::make_unique<Server>(cfg);
        server->submit(t);
        server->run();
        return server;
    };

    auto a = run();
    auto b = run();
    EXPECT_TRUE(Fingerprint::of(*a) == Fingerprint::of(*b));
    EXPECT_EQ(a->reports()[0].migrations, b->reports()[0].migrations);
}

// -------------------------------------------------------------------
// Steal: cross-shard work stealing
// -------------------------------------------------------------------

ServeConfig
stealConfig()
{
    ServeConfig cfg;
    cfg.engine.cores = 2;
    cfg.engine.max_inflight_bundles = 256;
    cfg.engine.monitor_period = kNsPerMs;
    cfg.window_ns = 20 * kNsPerMs;
    cfg.shards = 2;
    cfg.work_stealing = true;
    return cfg;
}

std::vector<TenantSpec>
stealFleet()
{
    // A heavy session saturates shard 0's two cores; a light one
    // placed on shard 1 (smaller load vector) drains quickly and
    // leaves that shard idle with most of the heavy backlog left.
    TenantSpec heavy;
    heavy.id = 1;
    heavy.name = "heavy";
    heavy.total_records = 100'000;
    heavy.bundle_records = 1'000;
    heavy.offered_rate = 5e7;
    heavy.poisson_arrivals = true;
    heavy.hbm_reserve_bytes = 8_MiB;
    heavy.max_inflight_bundles = 32;

    TenantSpec light;
    light.id = 2;
    light.name = "light";
    light.total_records = 5'000;
    light.bundle_records = 1'000;
    light.offered_rate = 5e6;
    light.poisson_arrivals = true;
    light.hbm_reserve_bytes = 1_MiB;
    light.max_inflight_bundles = 8;

    return {heavy, light};
}

TEST(Steal, IdleShardLendsCyclesChargedHome)
{
    Server server(stealConfig());
    server.submitFleet(stealFleet());
    server.run();

    ASSERT_EQ(server.reports().size(), 2u);
    const TenantReport &heavy = server.reports()[0];
    const TenantReport &light = server.reports()[1];
    EXPECT_EQ(heavy.shard, 0u);
    EXPECT_EQ(light.shard, 1u);
    EXPECT_EQ(heavy.records, 100'000u);
    EXPECT_EQ(light.records, 5'000u);

    const auto &exec0 = server.engine(0).exec();
    const auto &exec1 = server.engine(1).exec();
    EXPECT_GT(exec1.stolenIn(), 0u)
        << "the drained shard must steal from the backlogged one";
    // Conservation: every task stolen out of some shard ran on some
    // other shard, fleet-wide.
    EXPECT_EQ(exec0.stolenOut() + exec1.stolenOut(),
              exec0.stolenIn() + exec1.stolenIn());

    // Charged home: the thief books no work against the victim's
    // stream — spawn, completion, and cost totals all stay with the
    // home executor, so the report equals the home stream count.
    EXPECT_EQ(exec1.streamStats(1).spawned, 0u);
    EXPECT_EQ(exec1.streamStats(1).completed, 0u);
    EXPECT_EQ(exec0.streamStats(1).completed, heavy.tasks);
    EXPECT_EQ(exec0.streamStats(1).spawned,
              exec0.streamStats(1).completed);
}

TEST(Steal, StealingRunsAreBitIdentical)
{
    auto run = [] {
        auto server = std::make_unique<Server>(stealConfig());
        server->submitFleet(stealFleet());
        server->run();
        return server;
    };
    auto a = run();
    auto b = run();
    EXPECT_TRUE(Fingerprint::of(*a) == Fingerprint::of(*b));
    EXPECT_EQ(a->engine(1).exec().stolenIn(),
              b->engine(1).exec().stolenIn());
    EXPECT_EQ(a->engine(0).exec().stolenOut(),
              b->engine(0).exec().stolenOut());
}

} // namespace
} // namespace sbhbm::serve
