/**
 * @file
 * SlaTracker breach hysteresis: one violating window puts the tenant
 * in breach (one placement demotion episode); it recovers only after
 * the configured streak of in-target windows, so the placement class
 * does not flap on a single good window.
 */

#include "serve/sla_tracker.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "pipeline/operator.h"
#include "runtime/engine.h"

namespace sbhbm::serve {
namespace {

/**
 * Harness: a pipeline whose externalization times are scripted via
 * machine events, so each window's watermark latency is exact.
 */
class SlaTrackerTest : public ::testing::Test
{
  protected:
    static constexpr SimTime kWindow = 100 * kNsPerMs;
    static constexpr SimTime kTarget = 20 * kNsPerMs;

    SlaTrackerTest()
        : eng_(runtime::EngineConfig{}),
          pipe_(eng_, columnar::WindowSpec{kWindow}), sla_(kTarget)
    {
    }

    /**
     * Externalize window @p w with latency @p late past its end.
     * Windows externalize in order, so the scripted times must be
     * monotone: keep every @p late within one window length of the
     * previous window's.
     */
    void
    externalize(columnar::WindowId w, SimTime late)
    {
        const SimTime at = (w + 1) * kWindow + late;
        sbhbm_assert(at > last_at_, "externalizations must be ordered");
        last_at_ = at;
        eng_.machine().at(at, [this, w] {
            pipe_.noteWindowExternalized(w);
        });
    }

    void
    runAndObserve()
    {
        eng_.machine().run();
        sla_.observe(pipe_);
    }

    SimTime last_at_ = 0;
    runtime::Engine eng_;
    pipeline::Pipeline pipe_;
    SlaTracker sla_;
};

TEST_F(SlaTrackerTest, ViolationEntersBreachOnce)
{
    externalize(0, kTarget / 2);    // fine
    externalize(1, 3 * kTarget);    // violation
    externalize(2, 4 * kTarget);    // still violating: same episode
    runAndObserve();
    EXPECT_EQ(sla_.violations(), 2u);
    EXPECT_TRUE(sla_.breached());
    EXPECT_EQ(sla_.breaches(), 1u) << "one episode, not one per window";
}

TEST_F(SlaTrackerTest, RecoversOnlyAfterStreak)
{
    sla_.setRecoveryWindows(3);
    externalize(0, 3 * kTarget); // breach
    externalize(1, 0);
    externalize(2, 0);
    runAndObserve();
    EXPECT_TRUE(sla_.breached()) << "2 of 3 recovery windows seen";

    externalize(3, 0);
    runAndObserve();
    EXPECT_FALSE(sla_.breached()) << "streak of 3 clears the breach";
    EXPECT_EQ(sla_.breaches(), 1u);
}

TEST_F(SlaTrackerTest, ViolationMidStreakRestartsRecovery)
{
    sla_.setRecoveryWindows(2);
    externalize(0, 3 * kTarget); // breach
    externalize(1, 0);
    externalize(2, 3 * kTarget); // relapse before the streak completes
    externalize(3, 0);
    runAndObserve();
    EXPECT_TRUE(sla_.breached());
    EXPECT_EQ(sla_.breaches(), 1u) << "relapse extends the episode";

    externalize(4, 0);
    runAndObserve();
    EXPECT_FALSE(sla_.breached());

    // A fresh violation after recovery is a new episode.
    externalize(5, 3 * kTarget);
    runAndObserve();
    EXPECT_TRUE(sla_.breached());
    EXPECT_EQ(sla_.breaches(), 2u);
}

TEST_F(SlaTrackerTest, NeverBreachedWithoutViolations)
{
    for (columnar::WindowId w = 0; w < 6; ++w)
        externalize(w, kTarget / 4);
    runAndObserve();
    EXPECT_EQ(sla_.violations(), 0u);
    EXPECT_FALSE(sla_.breached());
    EXPECT_EQ(sla_.breaches(), 0u);
}

} // namespace
} // namespace sbhbm::serve
