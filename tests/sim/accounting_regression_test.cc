/**
 * @file
 * Regression tests for simulator accounting subtleties found during
 * calibration: time-accurate cumulative bandwidth, daemon events, and
 * executor task-closure lifetime.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "runtime/executor.h"
#include "sim/machine.h"

namespace sbhbm::sim {
namespace {

TEST(BandwidthAccounting, CumulativeBytesAccrueContinuously)
{
    // A long flow's bytes must be visible *while* it transfers, not
    // only at completion — a monitor sampling mid-flow would
    // otherwise see a lump at the end (and report impossible rates).
    Machine m(MachineConfig::knl());
    CostLog log;
    log.seq(Tier::kDram, 100'000'000); // 100 MB
    bool done = false;
    m.execute(std::move(log), [&] { done = true; });

    // Single flow, capped by per-core sequential bandwidth.
    const double cap = m.config().dram.per_core_seq_bw;
    m.runUntil(5 * kNsPerMs);
    EXPECT_FALSE(done);
    const double mid = m.tierCumulativeBytes(Tier::kDram);
    EXPECT_NEAR(mid, cap * 5e-3, cap * 1e-4);
    m.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(m.tierCumulativeBytes(Tier::kDram), 1e8, 1.0);
}

TEST(BandwidthAccounting, MeasuredRateNeverExceedsTierPeak)
{
    // 100 concurrent flows; sample every 100 us: no interval may show
    // more than the tier's peak bandwidth.
    Machine m(MachineConfig::knl());
    int done = 0;
    for (int i = 0; i < 100; ++i) {
        CostLog log;
        log.seq(Tier::kDram, 5'000'000);
        m.execute(std::move(log), [&] { ++done; });
    }
    double last = 0;
    SimTime last_t = 0;
    double max_rate = 0;
    std::function<void()> tick = [&] {
        const double cum = m.tierCumulativeBytes(Tier::kDram);
        if (m.now() > last_t) {
            max_rate = std::max(
                max_rate,
                (cum - last) / ((m.now() - last_t) * 1e-9));
        }
        last = cum;
        last_t = m.now();
        if (done < 100)
            m.after(100 * kNsPerUs, tick, /*daemon=*/true);
    };
    m.after(100 * kNsPerUs, tick, /*daemon=*/true);
    m.run();
    EXPECT_EQ(done, 100);
    EXPECT_LE(max_rate, m.config().dram.peak_seq_bw * 1.001);
    // Average over the whole run equals the peak (fully loaded).
    EXPECT_NEAR(m.tierCumulativeBytes(Tier::kDram), 5e8, 1.0);
}

TEST(DaemonEvents, DoNotKeepRunAlive)
{
    Machine m(MachineConfig::knl());
    int ticks = 0;
    std::function<void()> tick = [&] {
        ++ticks;
        m.after(kNsPerMs, tick, /*daemon=*/true);
    };
    m.after(kNsPerMs, tick, /*daemon=*/true);

    bool work_done = false;
    CostLog log;
    log.cpu(3e6); // 3 ms of work
    m.execute(std::move(log), [&] { work_done = true; });

    m.run(); // must terminate despite the self-rearming daemon
    EXPECT_TRUE(work_done);
    EXPECT_GE(ticks, 2);
    EXPECT_LE(ticks, 5) << "run() should stop once live work drains";
}

TEST(DaemonEvents, RunUntilDrivesDaemonsWithoutLiveWork)
{
    Machine m(MachineConfig::knl());
    int ticks = 0;
    std::function<void()> tick = [&] {
        ++ticks;
        m.after(kNsPerMs, tick, /*daemon=*/true);
    };
    m.after(kNsPerMs, tick, /*daemon=*/true);
    m.runUntil(10 * kNsPerMs); // bounded horizon: daemons do run
    EXPECT_GE(ticks, 9);
}

TEST(Executor, TaskClosureLivesUntilSimulatedCompletion)
{
    // Resources captured by a task (bundles, KPAs) must be released
    // at the task's *simulated* completion, not when its functional
    // body ran at dispatch — back-pressure depends on it.
    Machine m(MachineConfig::knl());
    runtime::Executor exec(m, 1);

    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> watch = token;

    exec.spawn(runtime::ImpactTag::kHigh,
               [held = std::move(token)](CostLog &log) {
                   log.cpu(2e6); // 2 ms
               });
    // Body has run (dispatch is immediate on a free core), but the
    // closure must still hold the token until virtual completion.
    m.runUntil(kNsPerMs);
    EXPECT_FALSE(watch.expired())
        << "task resources released before simulated completion";
    m.run();
    EXPECT_TRUE(watch.expired());
}

TEST(Executor, PriorityOrderUrgentFirst)
{
    Machine m(MachineConfig::knl());
    runtime::Executor exec(m, 1); // single core: strict queueing
    std::vector<int> order;

    // Occupy the core, then queue Low before Urgent.
    exec.spawn(runtime::ImpactTag::kLow,
               [](CostLog &log) { log.cpu(1e3); });
    exec.spawn(
        runtime::ImpactTag::kLow, [](CostLog &log) { log.cpu(1e3); },
        [&] { order.push_back(3); });
    exec.spawn(
        runtime::ImpactTag::kHigh, [](CostLog &log) { log.cpu(1e3); },
        [&] { order.push_back(2); });
    exec.spawn(
        runtime::ImpactTag::kUrgent, [](CostLog &log) { log.cpu(1e3); },
        [&] { order.push_back(1); });
    m.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
}

} // namespace
} // namespace sbhbm::sim
