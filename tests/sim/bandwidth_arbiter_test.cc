#include "sim/bandwidth_arbiter.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace sbhbm::sim {
namespace {

constexpr double kPeakSeq = 100e9; // 100 GB/s
constexpr double kPeakRand = 40e9; // 40 GB/s

TEST(BandwidthArbiter, SingleFlowRunsAtItsCap)
{
    BandwidthArbiter arb(kPeakSeq, kPeakRand);
    bool done = false;
    arb.add(10e9, 10e9, AccessPattern::kSequential, [&] { done = true; });
    arb.recompute();
    EXPECT_DOUBLE_EQ(arb.currentRate(), 10e9);

    // 10 GB at 10 GB/s => 1 second.
    const SimTime fin = arb.nextCompletion();
    EXPECT_NEAR(static_cast<double>(fin), 1e9, 1e3);

    arb.advanceTo(fin);
    auto callbacks = arb.reapCompleted();
    ASSERT_EQ(callbacks.size(), 1u);
    callbacks[0]();
    EXPECT_TRUE(done);
    EXPECT_EQ(arb.activeFlows(), 0u);
}

TEST(BandwidthArbiter, FlowsShareEqualUnderContention)
{
    BandwidthArbiter arb(kPeakSeq, kPeakRand);
    // 20 flows, each capped at 10 GB/s => demand 200 GB/s > 100 peak.
    for (int i = 0; i < 20; ++i)
        arb.add(1e9, 10e9, AccessPattern::kSequential, [] {});
    arb.recompute();
    // Aggregate pinned at the tier peak.
    EXPECT_NEAR(arb.currentRate(), kPeakSeq, 1);
    // Each flow gets 5 GB/s => 1 GB in 0.2 s.
    EXPECT_NEAR(static_cast<double>(arb.nextCompletion()), 0.2e9, 1e3);
}

TEST(BandwidthArbiter, UncappedDemandBelowPeakIsFullyGranted)
{
    BandwidthArbiter arb(kPeakSeq, kPeakRand);
    for (int i = 0; i < 4; ++i)
        arb.add(1e9, 10e9, AccessPattern::kSequential, [] {});
    arb.recompute();
    EXPECT_NEAR(arb.currentRate(), 40e9, 1);
}

TEST(BandwidthArbiter, RandomMixCappedAtRandomPeak)
{
    BandwidthArbiter arb(kPeakSeq, kPeakRand);
    // 50 random flows wanting 2 GB/s each = 100 GB/s demand, but the
    // random-access aggregate is only 40 GB/s.
    for (int i = 0; i < 50; ++i)
        arb.add(1e9, 2e9, AccessPattern::kRandom, [] {});
    arb.recompute();
    EXPECT_NEAR(arb.currentRate(), kPeakRand, 1);
}

TEST(BandwidthArbiter, SequentialTrafficUnaffectedByRandomCap)
{
    BandwidthArbiter arb(kPeakSeq, kPeakRand);
    for (int i = 0; i < 50; ++i)
        arb.add(1e9, 2e9, AccessPattern::kRandom, [] {});
    for (int i = 0; i < 10; ++i)
        arb.add(1e9, 6e9, AccessPattern::kSequential, [] {});
    arb.recompute();
    // Random mix saturates at 40, sequential adds its full 60.
    EXPECT_NEAR(arb.currentRate(), 100e9, 1e6);
}

TEST(BandwidthArbiter, MaxMinHonorsSmallCaps)
{
    BandwidthArbiter arb(kPeakSeq, kPeakRand);
    // One tiny-cap flow and three big ones; the tiny one must get its
    // full cap, the rest split the remainder.
    arb.add(1e9, 1e9, AccessPattern::kSequential, [] {});
    for (int i = 0; i < 3; ++i)
        arb.add(1e9, 50e9, AccessPattern::kSequential, [] {});
    arb.recompute();
    EXPECT_NEAR(arb.currentRate(), 1e9 + 3 * 33e9, 1e8);
}

TEST(BandwidthArbiter, RatesRecomputeWhenAFlowLeaves)
{
    BandwidthArbiter arb(kPeakSeq, kPeakRand);
    int done = 0;
    // Flow A: 1 GB; Flow B: 10 GB; both capped 60 GB/s. They share
    // 50/50 until A drains, then B runs at its cap.
    arb.add(1e9, 60e9, AccessPattern::kSequential, [&] { ++done; });
    arb.add(10e9, 60e9, AccessPattern::kSequential, [&] { ++done; });
    arb.recompute();

    // Shared phase: each at 50 GB/s; A finishes at 20 ms.
    SimTime t1 = arb.nextCompletion();
    EXPECT_NEAR(static_cast<double>(t1), 0.02e9, 1e4);
    arb.advanceTo(t1);
    for (auto &cb : arb.reapCompleted())
        cb();
    EXPECT_EQ(done, 1);
    arb.recompute();
    EXPECT_NEAR(arb.currentRate(), 60e9, 1);

    // B had 10 - 1 = 9 GB left, now at 60 GB/s => 150 ms more.
    SimTime t2 = arb.nextCompletion();
    EXPECT_NEAR(static_cast<double>(t2 - t1), 0.15e9, 1e5);
    arb.advanceTo(t2);
    for (auto &cb : arb.reapCompleted())
        cb();
    EXPECT_EQ(done, 2);
}

TEST(BandwidthArbiter, CumulativeBytesTracksDrainedTraffic)
{
    BandwidthArbiter arb(kPeakSeq, kPeakRand);
    arb.add(2e9, 10e9, AccessPattern::kSequential, [] {});
    arb.recompute();
    arb.advanceTo(100 * kNsPerMs); // 0.1 s at 10 GB/s = 1 GB
    EXPECT_NEAR(arb.cumulativeBytes(), 1e9, 1e6);
    arb.advanceTo(arb.nextCompletion());
    EXPECT_NEAR(arb.cumulativeBytes(), 2e9, 1e6);
    // Cumulative counter never overshoots the flow's byte count.
    arb.advanceTo(arb.nextCompletion());
}

TEST(BandwidthArbiterDeath, ZeroByteFlowPanics)
{
    BandwidthArbiter arb(kPeakSeq, kPeakRand);
    EXPECT_DEATH(arb.add(0, 1e9, AccessPattern::kSequential, [] {}),
                 "positive bytes");
}

} // namespace
} // namespace sbhbm::sim
