#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace sbhbm::sim {
namespace {

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTime(), kSimTimeNever);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, EqualTimestampsFireInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(100, [&, i] { order.push_back(i); });
    q.run();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ClockAdvancesToEventTime)
{
    EventQueue q;
    SimTime seen = 0;
    q.schedule(12345, [&] { seen = q.now(); });
    q.run();
    EXPECT_EQ(seen, 12345u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            q.schedule(q.now() + 10, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtLimitAndAdvancesClock)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(100, [&] { ++fired; });
    q.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 50u);
    EXPECT_EQ(q.size(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilIncludesEventsAtTheLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(50, [&] { ++fired; });
    q.runUntil(50);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(50, [] {}), "scheduling into the past");
}

} // namespace
} // namespace sbhbm::sim
