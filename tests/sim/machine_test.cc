#include "sim/machine.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/cost_model.h"

namespace sbhbm::sim {
namespace {

MachineConfig
simpleConfig()
{
    // A machine with round numbers to make expectations readable.
    MachineConfig m;
    m.name = "test";
    m.cores = 4;
    m.scalar_speed = 1.0;
    m.vector_speed = 2.0;
    m.hbm = TierSpec{
        .capacity_bytes = 1_GiB,
        .peak_seq_bw = 100e9,
        .peak_rand_bw = 40e9,
        .latency_ns = 200.0,
        .per_core_seq_bw = 10e9,
        .random_mlp = 4.0,
    };
    m.dram = TierSpec{
        .capacity_bytes = 16_GiB,
        .peak_seq_bw = 20e9,
        .peak_rand_bw = 10e9,
        .latency_ns = 100.0,
        .per_core_seq_bw = 10e9,
        .random_mlp = 4.0,
    };
    return m;
}

TEST(Machine, CpuOnlyTaskTakesItsCpuTime)
{
    Machine m(simpleConfig());
    CostLog cost;
    cost.cpu(5000);
    SimTime done_at = 0;
    m.execute(std::move(cost), [&] { done_at = m.now(); });
    m.run();
    EXPECT_NEAR(static_cast<double>(done_at), 5000, 2);
}

TEST(Machine, VectorCpuScaledBySpeedFactor)
{
    Machine m(simpleConfig()); // vector_speed = 2.0
    CostLog cost;
    cost.cpuVector(8000);
    SimTime done_at = 0;
    m.execute(std::move(cost), [&] { done_at = m.now(); });
    m.run();
    EXPECT_NEAR(static_cast<double>(done_at), 4000, 2);
}

TEST(Machine, MemoryPhaseRunsAtPerFlowCap)
{
    Machine m(simpleConfig());
    CostLog cost;
    cost.seq(Tier::kHbm, 1000000000ull); // 1 GB at 10 GB/s cap
    SimTime done_at = 0;
    m.execute(std::move(cost), [&] { done_at = m.now(); });
    m.run();
    EXPECT_NEAR(static_cast<double>(done_at), 0.1e9, 1e4);
}

TEST(Machine, CpuAndMemoryOverlapRoofline)
{
    Machine m(simpleConfig());
    // 0.1 s of memory vs 0.3 s of CPU in one phase: phase takes the max.
    CostLog cost;
    cost.seq(Tier::kHbm, 1000000000ull);
    cost.cpu(0.3e9);
    SimTime done_at = 0;
    m.execute(std::move(cost), [&] { done_at = m.now(); });
    m.run();
    EXPECT_NEAR(static_cast<double>(done_at), 0.3e9, 1e4);
}

TEST(Machine, PhasesAreSerial)
{
    Machine m(simpleConfig());
    CostLog cost;
    cost.cpu(1000);
    cost.nextPhase();
    cost.cpu(2000);
    cost.nextPhase();
    cost.seq(Tier::kDram, 10000000ull); // 10 MB at 10 GB/s = 1 ms
    SimTime done_at = 0;
    m.execute(std::move(cost), [&] { done_at = m.now(); });
    m.run();
    EXPECT_NEAR(static_cast<double>(done_at), 1000 + 2000 + 1e6, 10);
}

TEST(Machine, EmptyCostCompletesImmediatelyButAsynchronously)
{
    Machine m(simpleConfig());
    bool done = false;
    m.execute(CostLog{}, [&] { done = true; });
    EXPECT_FALSE(done); // never synchronous
    m.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(m.now(), 0u);
}

TEST(Machine, ContendingTasksSlowEachOtherDown)
{
    Machine m(simpleConfig());
    // DRAM peak 20 GB/s, per-flow cap 10 GB/s. Four 1 GB streams
    // get 5 GB/s each => 0.2 s, twice the uncontended time.
    int done = 0;
    SimTime done_at = 0;
    for (int i = 0; i < 4; ++i) {
        CostLog cost;
        cost.seq(Tier::kDram, 1000000000ull);
        m.execute(std::move(cost), [&] {
            ++done;
            done_at = m.now();
        });
    }
    m.run();
    EXPECT_EQ(done, 4);
    EXPECT_NEAR(static_cast<double>(done_at), 0.2e9, 1e5);
}

TEST(Machine, HbmAndDramDoNotContend)
{
    Machine m(simpleConfig());
    SimTime hbm_done = 0, dram_done = 0;
    CostLog a;
    a.seq(Tier::kHbm, 1000000000ull);
    m.execute(std::move(a), [&] { hbm_done = m.now(); });
    CostLog b;
    b.seq(Tier::kDram, 1000000000ull);
    m.execute(std::move(b), [&] { dram_done = m.now(); });
    m.run();
    // Both run at their 10 GB/s per-flow cap: no cross-tier slowdown.
    EXPECT_NEAR(static_cast<double>(hbm_done), 0.1e9, 1e4);
    EXPECT_NEAR(static_cast<double>(dram_done), 0.1e9, 1e4);
}

TEST(Machine, RandomAccessIsLatencyBound)
{
    Machine m(simpleConfig());
    // HBM random: mlp 4 * 64B / 200ns = 1.28 GB/s per flow.
    CostLog cost;
    cost.rand(Tier::kHbm, 128000000ull); // 128 MB
    SimTime done_at = 0;
    m.execute(std::move(cost), [&] { done_at = m.now(); });
    m.run();
    EXPECT_NEAR(static_cast<double>(done_at), 0.1e9, 1e6);
}

TEST(Machine, TierRateObservableWhileFlowsActive)
{
    Machine m(simpleConfig());
    CostLog cost;
    cost.seq(Tier::kHbm, 1000000000ull);
    m.execute(std::move(cost), [] {});
    // Sample mid-flight.
    double rate_seen = 0;
    m.at(50 * kNsPerMs, [&] { rate_seen = m.tierRate(Tier::kHbm); });
    m.run();
    EXPECT_NEAR(rate_seen, 10e9, 1);
    EXPECT_NEAR(m.tierCumulativeBytes(Tier::kHbm), 1e9, 1e3);
}

TEST(Machine, LateArrivalSharesBandwidthFromItsStart)
{
    Machine m(simpleConfig());
    // Task A starts at t=0 with 1 GB on DRAM (cap 10 GB/s).
    SimTime a_done = 0, b_done = 0;
    CostLog a;
    a.seq(Tier::kDram, 1000000000ull);
    m.execute(std::move(a), [&] { a_done = m.now(); });
    // At t=50ms, tasks B+C join; 3 flows share 20 GB/s => 6.67 each.
    m.at(50 * kNsPerMs, [&] {
        for (int i = 0; i < 2; ++i) {
            CostLog c;
            c.seq(Tier::kDram, 1000000000ull);
            m.execute(std::move(c), [&] { b_done = m.now(); });
        }
    });
    m.run();
    // A: 0.5 GB done at t=50ms, then 0.5 GB at 6.67 GB/s => 75 ms more.
    EXPECT_NEAR(static_cast<double>(a_done), 0.125e9, 2e6);
    EXPECT_GT(b_done, a_done);
}

TEST(MachineDeath, FlowOnAbsentTierPanics)
{
    auto cfg = MachineConfig::x56(); // no HBM
    Machine m(cfg);
    CostLog cost;
    cost.seq(Tier::kHbm, 1000);
    EXPECT_DEATH(m.execute(std::move(cost), [] {}), "absent tier");
}

TEST(Machine, KnlConfigMatchesTable3)
{
    const auto knl = MachineConfig::knl();
    EXPECT_EQ(knl.cores, 64u);
    EXPECT_EQ(knl.hbm.capacity_bytes, 16_GiB);
    EXPECT_EQ(knl.dram.capacity_bytes, 96_GiB);
    EXPECT_NEAR(knl.hbm.peak_seq_bw, 375e9, 1);
    EXPECT_NEAR(knl.dram.peak_seq_bw, 80e9, 1);
    EXPECT_NEAR(knl.hbm.latency_ns, 172.0, 1e-9);
    EXPECT_NEAR(knl.dram.latency_ns, 143.0, 1e-9);
    // Effective payload rates: 40 Gb/s Infiniband delivers ~2.6 GB/s
    // of records after encoding/headers (the paper's 110 M rec/s x
    // 24 B ceiling); Ethernet is the raw 10 Gb/s link rate.
    EXPECT_NEAR(knl.nic_rdma_bw, 2.6e9, 1);
    EXPECT_NEAR(knl.nic_ethernet_bw, 1.25e9, 1);
}

} // namespace
} // namespace sbhbm::sim
